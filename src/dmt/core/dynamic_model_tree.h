// The Dynamic Model Tree (DMT) -- the paper's contribution (Sections IV-V).
//
// A model tree that maintains an incrementally trained simple model (a
// binary logit or multinomial softmax GLM, Sec. V-A) at EVERY node, leaf and
// inner alike. Structural updates are driven purely by the negative
// log-likelihood loss:
//
//  * Leaves split on the stored candidate with the largest loss-based gain,
//    Eq. (3); candidate losses are approximated by one warm-started gradient
//    step, Eqs. (6)-(7), so no candidate models are ever trained.
//  * Inner nodes keep learning and keep scoring candidates. A subtree is
//    replaced by a fresh split when Eq. (4) turns positive, or collapsed
//    into a leaf when Eq. (5) does -- this is how DMT adapts to concept
//    drift without any dedicated drift detector, and what yields the
//    consistency (Property 1 / Lemma 1) and minimality (Property 2 /
//    Lemma 2) guarantees.
//  * Robustness thresholds follow the AIC confidence test of Eq. (11):
//    a structural change must improve the loss by at least
//    (#params added) - log(epsilon) nats.
//
// Bounded memory: each node stores at most `max_candidates` candidate
// statistics (default 3m); per batch, at most a `replacement_rate` fraction
// of them may be replaced by fresh candidates with larger estimated gain
// (Sec. V-D).
//
// Window alignment note: statistics of a node are reset whenever its
// sub-structure changes (it splits, replaces its split, or its children are
// created), so the loss sums compared by Eqs. (4)-(5) cover comparable
// observation windows; deeper restructuring below an old inner node biases
// the comparison conservatively (see DESIGN.md).
#ifndef DMT_CORE_DYNAMIC_MODEL_TREE_H_
#define DMT_CORE_DYNAMIC_MODEL_TREE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/random.h"
#include "dmt/core/candidate.h"
#include "dmt/core/candidate_update.h"
#include "dmt/linear/glm.h"

namespace dmt::core {

struct DmtConfig {
  int num_features = 0;
  int num_classes = 2;
  // SGD learning rate of the simple models (paper default 0.05).
  double learning_rate = 0.05;
  // Warm-start step size lambda of Eqs. (6)-(7). The candidate loss
  // estimate is L - (lambda/|C|)*||grad||^2, i.e. one step of size lambda
  // along the *mean* gradient. A persistent sub-region signal then makes
  // the estimated gain grow linearly in the candidate count while
  // pure-noise gains stay bounded, so the AIC threshold separates them;
  // lambda controls how much evidence a split needs (0.2 reproduces the
  // paper's behaviour: XOR-style concepts split within a few thousand
  // observations, linearly separable concepts stay split-free).
  double gradient_step_size = 0.2;
  // AIC confidence epsilon of Eq. (11) (paper default 1e-8).
  double epsilon = 1e-8;
  // Maximum stored split candidates per node; 0 derives 3 * num_features
  // (paper default).
  std::size_t max_candidates = 0;
  // Fraction of stored candidates replaceable per time step (paper: 50%).
  double replacement_rate = 0.5;
  // Cap on new-candidate proposals evaluated per feature and batch; keeps
  // the per-step cost bounded for very large batches (0 = all unique
  // values, the paper's setting for 0.1% batches).
  std::size_t max_proposals_per_feature = 64;
  // --- Dirty-node gain scheduler (DESIGN.md Sec. 12) ----------------------
  // The AIC split/replace/prune battery (Eq. 11 / Algorithm 1) and fresh
  // candidate proposals run on a node only when, since its last
  // evaluation, the node has absorbed gain_test_every samples (the
  // amortized schedule: every node is still tested periodically) OR has
  // accumulated gain_test_threshold nats of loss (the dirty trigger:
  // badly-fit nodes -- fresh leaves, drifted subtrees -- are tested
  // sooner, in proportion to the evidence arriving). Between evaluations a
  // batch costs only the model update, the tallies and the stored-
  // candidate scatter; no per-feature sort, no proposals. Both triggers
  // count observations, never wall clock, so the schedule is
  // seed-deterministic and identical at any --jobs value. Exact mode
  // (gain_test_every = 1 or gain_test_threshold = 0) evaluates every node
  // every batch and is bit-identical to the pre-scheduler pipeline.
  // Defaults: the period keeps rarely-hit nodes honest; the threshold sits
  // a little above the deepest AIC split threshold (~2k - ln eps nats), so
  // a node accumulating split-worthy evidence is evaluated within roughly
  // one batch of the evidence arriving (empirically, XOR split timing is
  // identical to exact mode) while converged nodes skip most batches.
  std::size_t gain_test_every = 1000;
  double gain_test_threshold = 50.0;
  // --- Training hot path (candidate_update.h) -----------------------------
  // Fixed-width radix buckets per feature for the evaluation-batch order
  // statistics: proposal boundaries come from an O(rows + buckets) binning
  // of the scaled [0, 1] feature range instead of an O(n log n) sort, and
  // each proposed threshold is an actual observed value (the per-bucket
  // maximum), so the accumulated candidate statistics stay exact sums --
  // only the choice of boundaries is quantized. 0 restores the exact
  // sort-based scan (--dmt-exact; bit-identical to the legacy pipeline).
  std::size_t order_buckets = 256;
  // Store split-candidate gradients as float32 (double arithmetic, one
  // float rounding per element per update); halves the candidate store's
  // memory traffic. false restores full f64 storage (--dmt-exact).
  bool candidate_grad_f32 = true;
  std::uint64_t seed = 42;
};

// One structural change, kept in an audit log so that every model update is
// attributable to a loss change -- the paper's notion of interpretable
// online learning ("Why have you split this node at time step u?", Sec. I-A).
struct StructuralEvent {
  enum class Kind { kSplit, kReplaceSplit, kPruneToLeaf };
  Kind kind = Kind::kSplit;
  std::size_t time_step = 0;  // PartialFit invocation index
  int feature = -1;           // split feature involved (new split, if any)
  double value = 0.0;
  double gain = 0.0;       // realized loss gain, Eqs. (3)-(5)
  double threshold = 0.0;  // AIC threshold the gain had to clear
  std::size_t depth = 0;   // depth of the affected node
};

class DynamicModelTree : public Classifier {
 public:
  explicit DynamicModelTree(const DmtConfig& config);
  ~DynamicModelTree() override;

  void PartialFit(const Batch& batch) override;
  int num_classes() const override { return config_.num_classes; }
  // Routes to the responsible leaf and scores its simple model in place.
  void PredictProbaInto(std::span<const double> x,
                        std::span<double> out) const override;
  std::size_t NumSplits() const override;
  std::size_t NumParameters() const override;
  std::string name() const override { return "DMT"; }
  // Caches raw counter pointers for structural events, gain-test outcomes
  // and candidate-store churn ("dmt.*" namespace; see obs/telemetry.h).
  void AttachTelemetry(obs::TelemetryRegistry* registry) override;

  // --- Introspection / interpretability API -------------------------------

  std::size_t NumInnerNodes() const;
  std::size_t NumLeaves() const;
  std::size_t Depth() const;
  std::size_t time_step() const { return time_step_; }

  // Per-class feature weights of the leaf model responsible for `x` (local
  // feature-based explanation, Sec. I-C).
  std::vector<double> LeafFeatureWeights(std::span<const double> x,
                                         int c) const;

  // Human-readable rendering of the tree: split predicates and, per leaf,
  // the largest-magnitude model weights.
  std::string Describe(int max_weights_per_leaf = 3) const;

  // Structural audit log (most recent `max_events` events are retained).
  const std::vector<StructuralEvent>& events() const { return events_; }
  std::size_t num_splits_performed() const { return splits_performed_; }
  std::size_t num_subtree_replacements() const { return replacements_; }
  std::size_t num_prunes() const { return prunes_; }

  // Accumulated NLL over all leaves (the tree loss of Lemma 1).
  double AccumulatedLeafLoss() const;

  // Diagnostics of the root node's split search: the current best candidate
  // gain (Eq. 3/4), its observation count, and the number of stored
  // candidates. Useful for monitoring how close the tree is to a
  // structural change.
  struct RootDiagnostics {
    double best_gain = 0.0;
    double count = 0.0;
    std::size_t num_candidates = 0;
  };
  RootDiagnostics DiagnoseRoot() const;

  // --- Persistence (binary archive; see serial/archive.h) ------------------
  // Serializes the complete learner state (configuration, tree structure,
  // model parameters, node and candidate statistics, RNG engine) with exact
  // floating-point round-trip, so a restored tree continues training
  // identically. The engine is written last because Load's node
  // construction draws initial GLM weights. The structural audit log is not
  // persisted. Load throws serial::SerialError on malformed input.
  void Save(std::ostream& out) const override;
  static std::unique_ptr<DynamicModelTree> Load(std::istream& in);
  void SaveBody(serial::Writer& writer) const;
  static std::unique_ptr<DynamicModelTree> LoadBody(serial::Reader& reader);

  // AIC-derived gain thresholds (Sec. V-C; Eq. 11 and its analogues).
  double SplitThreshold() const;
  double ReplaceThreshold(std::size_t subtree_leaves) const;
  double PruneThreshold(std::size_t subtree_leaves) const;

 private:
  struct Node;

  std::unique_ptr<Node> MakeLeaf(const linear::Glm* warm_start_from);
  // PartialFit body for a batch known to be all-finite with valid labels.
  // Contaminated batches are copied minus the bad rows first: a NaN inside
  // ComputeFeatureOrders' sort comparator would violate strict weak
  // ordering (undefined behavior), so bad rows must never reach the sort.
  void PartialFitClean(const Batch& batch);
  // Bottom-up batch update (Algorithm 1 at every node on the paths). The
  // row span stays valid for the call's duration (it points into
  // scratch_.root_rows or a depth-indexed partition buffer).
  void UpdateNode(Node* node, const Batch& batch,
                  std::span<const std::size_t> rows, std::size_t depth);
  // Two-phase statistics update (candidate_update.h engine): always
  // accumulates the model step, tallies and stored-candidate scatter, then
  // consults the dirty-node scheduler. Returns true when this node was
  // evaluated this batch (fresh proposals made, counters reset) -- the
  // caller runs the structural checks only then.
  bool UpdateStatistics(Node* node, const Batch& batch,
                        std::span<const std::size_t> rows);
  void CheckLeafSplit(Node* node, std::size_t depth);
  void CheckInnerReplacement(Node* node, std::size_t depth);
  // Best stored candidate (row into the node's store, -1 if none) by gain
  // (3)/(4) against `reference_loss` (the node's own accumulated loss for
  // leaves; the subtree leaf-loss sum for inner nodes).
  int BestCandidateOf(const Node& node, double reference_loss,
                      double* best_gain) const;
  void RecordEvent(StructuralEvent event);

  DmtConfig config_;
  Rng rng_;
  int model_params_ = 0;  // k: free parameters of one simple model
  std::unique_ptr<Node> root_;
  TrainScratch scratch_;  // grow-only training buffers (zero-alloc steady state)
  // Lazily allocated copy buffer for batches containing non-finite rows;
  // never touched on the clean path.
  std::unique_ptr<Batch> clean_batch_;
  std::size_t time_step_ = 0;
  std::vector<StructuralEvent> events_;
  std::size_t splits_performed_ = 0;
  std::size_t replacements_ = 0;
  std::size_t prunes_ = 0;

  // Telemetry destinations, all null until AttachTelemetry (the registry
  // must outlive this tree).
  struct Telemetry {
    std::uint64_t* splits = nullptr;
    std::uint64_t* replacements = nullptr;
    std::uint64_t* prunes = nullptr;
    std::uint64_t* gain_tests = nullptr;
    std::uint64_t* gain_tests_passed = nullptr;
    // Dirty-node scheduler outcomes: node evaluations run, node
    // evaluations deferred, and evaluations forced early by the loss
    // threshold (before the amortized schedule was due).
    std::uint64_t* gain_tests_run = nullptr;
    std::uint64_t* gain_tests_skipped = nullptr;
    std::uint64_t* dirty_nodes = nullptr;
    std::uint64_t* candidate_proposals = nullptr;
    std::uint64_t* candidate_appends = nullptr;
    std::uint64_t* candidate_evictions = nullptr;
    // Bucketed order-statistics engine: evaluation batches routed through
    // radix buckets, and the proposals they produced.
    std::uint64_t* bucket_evals = nullptr;
    std::uint64_t* bucket_proposals = nullptr;
    // Training phase timers (wall clock; excluded from the golden counter
    // surface): inner-node routing, model step + per-sample gradients,
    // skip-path stored scatter, and the evaluation-path gain battery.
    obs::PhaseTimer* phase_route = nullptr;
    obs::PhaseTimer* phase_model_step = nullptr;
    obs::PhaseTimer* phase_scatter = nullptr;
    obs::PhaseTimer* phase_gain_battery = nullptr;
  };
  Telemetry telemetry_;

  static constexpr std::size_t kMaxEvents = 1024;
};

}  // namespace dmt::core

#endif  // DMT_CORE_DYNAMIC_MODEL_TREE_H_
