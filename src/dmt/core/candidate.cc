#include "dmt/core/candidate.h"

#include <limits>

#include "dmt/common/check.h"
#include "dmt/common/kernels.h"
#include "dmt/serial/archive.h"

namespace dmt::core {

void CandidateStore::Save(serial::Writer& writer) const {
  writer.Size(num_params_);
  writer.Size(size_);
  // v3 record: the gradient precision mode, then each row's gradients in
  // that precision (F32 halves the archive cost of f32 stores; no
  // widen-on-save round trip).
  writer.Bool(grad_f32_);
  for (std::size_t i = 0; i < size_; ++i) {
    writer.I32(feature_[i]);
    writer.F64(value_[i]);
    writer.F64(loss_[i]);
    writer.F64(count_[i]);
    if (grad_f32_) {
      for (float v : grad32(i)) writer.F32(v);
    } else {
      for (double v : grad(i)) writer.F64(v);
    }
  }
}

void CandidateStore::Load(serial::Reader& reader) {
  const std::size_t num_params = reader.Size(serial::kMaxVector);
  serial::Check(num_params == num_params_,
                "candidate store gradient width mismatch");
  const std::size_t n = reader.Size(serial::kMaxVector);
  // v2 archives predate the f32 mode: gradients are always F64 and may only
  // restore into an f64 store (the owning tree defaults grad_f32 off when
  // loading a v2 archive, so this only trips on a mode-mismatched caller).
  bool archived_f32 = false;
  if (reader.version() >= 3) {
    archived_f32 = reader.Bool();
  }
  serial::Check(archived_f32 == grad_f32_,
                "candidate store gradient mode mismatch");
  Clear();
  for (std::size_t i = 0; i < n; ++i) {
    const int feature = reader.I32();
    const double value = reader.F64();
    const std::size_t row = Append(feature, value);
    loss(row) = reader.F64();
    count(row) = reader.F64();
    if (grad_f32_) {
      float* g = grad32_.data() + row * num_params_;
      for (std::size_t j = 0; j < num_params_; ++j) g[j] = reader.F32();
    } else {
      for (double& v : grad(row)) v = reader.F64();
    }
  }
}

double ApproxCandidateLoss(double loss, std::span<const double> grad,
                           double count, double lambda) {
  if (count <= 0.0) return 0.0;
  return loss - (lambda / count) * kernels::SquaredNorm(grad);
}

double ApproxComplementLoss(double parent_loss,
                            std::span<const double> parent_grad,
                            double parent_count, double left_loss,
                            std::span<const double> left_grad,
                            double left_count, double lambda) {
  DMT_DCHECK(parent_grad.size() == left_grad.size());
  const double count = parent_count - left_count;
  if (count <= 0.0) return 0.0;
  const double grad_norm_sq = kernels::SquaredNormDiff(parent_grad, left_grad);
  return (parent_loss - left_loss) - (lambda / count) * grad_norm_sq;
}

double ApproxComplementLoss(double parent_loss,
                            const std::vector<double>& parent_grad,
                            double parent_count, const CandidateStats& left,
                            double lambda) {
  return ApproxComplementLoss(parent_loss, parent_grad, parent_count,
                              left.loss, left.grad, left.count, lambda);
}

double CandidateGain(const CandidateStore& store, std::size_t i,
                     double node_loss, std::span<const double> node_grad,
                     double node_count, double reference_loss, double lambda) {
  const double count = store.count(i);
  // Degenerate candidates (one empty side) cannot form a split.
  if (count <= 0.0 || count >= node_count) {
    return -std::numeric_limits<double>::infinity();
  }
  // Inlined ApproxCandidateLoss / ApproxComplementLoss on the store's
  // mode-agnostic norm accessors (same expressions, so the f64 mode is
  // bit-identical to the span-based helpers).
  const double left =
      store.loss(i) - (lambda / count) * store.GradSquaredNorm(i);
  const double right_count = node_count - count;
  const double right =
      (node_loss - store.loss(i)) -
      (lambda / right_count) * store.GradSquaredNormDiff(node_grad, i);
  return reference_loss - left - right;  // Eqs. (3) / (4)
}

int BestCandidate(const CandidateStore& store, double node_loss,
                  std::span<const double> node_grad, double node_count,
                  double reference_loss, double lambda, double* best_gain) {
  int best = -1;
  *best_gain = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < store.size(); ++i) {
    const double gain = CandidateGain(store, i, node_loss, node_grad,
                                      node_count, reference_loss, lambda);
    if (gain > *best_gain) {
      *best_gain = gain;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace dmt::core
