#include "dmt/core/candidate.h"

#include "dmt/common/check.h"
#include "dmt/common/math.h"

namespace dmt::core {

double ApproxCandidateLoss(double loss, const std::vector<double>& grad,
                           double count, double lambda) {
  if (count <= 0.0) return 0.0;
  return loss - (lambda / count) * SquaredNorm(grad);
}

double ApproxComplementLoss(double parent_loss,
                            const std::vector<double>& parent_grad,
                            double parent_count, const CandidateStats& left,
                            double lambda) {
  DMT_DCHECK(parent_grad.size() == left.grad.size());
  const double count = parent_count - left.count;
  if (count <= 0.0) return 0.0;
  double grad_norm_sq = 0.0;
  for (std::size_t p = 0; p < parent_grad.size(); ++p) {
    const double g = parent_grad[p] - left.grad[p];
    grad_norm_sq += g * g;
  }
  return (parent_loss - left.loss) - (lambda / count) * grad_norm_sq;
}

}  // namespace dmt::core
