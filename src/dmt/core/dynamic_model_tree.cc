#include "dmt/core/dynamic_model_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include <memory>

#include "dmt/common/check.h"
#include "dmt/common/math.h"
#include "dmt/common/sanitize.h"
#include "dmt/obs/telemetry.h"
#include "dmt/serial/model_io.h"

namespace dmt::core {

struct DynamicModelTree::Node {
  // Split predicate; split_feature < 0 marks a leaf.
  int split_feature = -1;
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // The simple model, trained at every time step regardless of node type
  // (inner nodes keep learning -- Sec. V-D of the paper).
  linear::Glm model;

  // Accumulated node statistics (Algorithm 1, lines 1-3), covering the
  // window since the node's last structural change.
  double loss_sum = 0.0;
  std::vector<double> grad_sum;
  double count = 0.0;

  // Bounded split-candidate store (Sec. V-D), SoA layout.
  CandidateStore candidates;

  // Dirty-node scheduler state: samples and loss absorbed since this
  // node's last AIC evaluation (the deterministic schedule inputs; see
  // DmtConfig::gain_test_every / gain_test_threshold).
  double samples_since_test = 0.0;
  double loss_since_test = 0.0;

  Node(const linear::GlmConfig& glm_config, Rng* rng, bool grad_f32)
      : model(glm_config, rng),
        grad_sum(model.num_params(), 0.0),
        candidates(static_cast<std::size_t>(model.num_params()), grad_f32) {}

  bool is_leaf() const { return split_feature < 0; }

  void ResetStats() {
    loss_sum = 0.0;
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0);
    count = 0.0;
    candidates.Clear();
    samples_since_test = 0.0;
    loss_since_test = 0.0;
  }
};

DynamicModelTree::DynamicModelTree(const DmtConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.epsilon > 0.0 && config.epsilon <= 1.0);
  DMT_CHECK(config.replacement_rate >= 0.0 && config.replacement_rate <= 1.0);
  DMT_CHECK(config.gain_test_every >= 1);
  DMT_CHECK(std::isfinite(config.gain_test_threshold) &&
            config.gain_test_threshold >= 0.0);
  DMT_CHECK(config.order_buckets <= (std::size_t{1} << 20));
  if (config_.max_candidates == 0) {
    config_.max_candidates = 3 * static_cast<std::size_t>(config.num_features);
  }
  root_ = MakeLeaf(nullptr);
  model_params_ = root_->model.num_params();
}

DynamicModelTree::~DynamicModelTree() = default;

void DynamicModelTree::AttachTelemetry(obs::TelemetryRegistry* registry) {
  if (registry == nullptr) return;
  telemetry_.splits = registry->Counter("dmt.splits");
  telemetry_.replacements = registry->Counter("dmt.replacements");
  telemetry_.prunes = registry->Counter("dmt.prunes");
  telemetry_.gain_tests = registry->Counter("dmt.gain_tests");
  telemetry_.gain_tests_passed = registry->Counter("dmt.gain_tests_passed");
  telemetry_.gain_tests_run = registry->Counter("dmt.gain_tests_run");
  telemetry_.gain_tests_skipped =
      registry->Counter("dmt.gain_tests_skipped");
  telemetry_.dirty_nodes = registry->Counter("dmt.dirty_nodes");
  telemetry_.candidate_proposals =
      registry->Counter("dmt.candidate_proposals");
  telemetry_.candidate_appends = registry->Counter("dmt.candidate_appends");
  telemetry_.candidate_evictions =
      registry->Counter("dmt.candidate_evictions");
  telemetry_.bucket_evals = registry->Counter("dmt.bucket_evals");
  telemetry_.bucket_proposals = registry->Counter("dmt.bucket_proposals");
  telemetry_.phase_route = registry->Timer("dmt.phase.route");
  telemetry_.phase_model_step = registry->Timer("dmt.phase.model_step");
  telemetry_.phase_scatter = registry->Timer("dmt.phase.scatter");
  telemetry_.phase_gain_battery = registry->Timer("dmt.phase.gain_battery");
}

std::unique_ptr<DynamicModelTree::Node> DynamicModelTree::MakeLeaf(
    const linear::Glm* warm_start_from) {
  linear::GlmConfig glm_config;
  glm_config.num_features = config_.num_features;
  glm_config.num_classes = config_.num_classes;
  glm_config.learning_rate = config_.learning_rate;
  auto node =
      std::make_unique<Node>(glm_config, &rng_, config_.candidate_grad_f32);
  if (warm_start_from != nullptr) node->model.WarmStartFrom(*warm_start_from);
  return node;
}

// --- Thresholds (Sec. V-C) --------------------------------------------------
//
// Eq. (11) for a leaf split: G >= k_C + k_Cbar - k_S - log(eps) = k - log(eps)
// with a single model type. The analogous derivation for Eqs. (4)/(5)
// compares 2 (respectively 1) new models against the #leaves models of the
// replaced subtree, giving parameter deltas (2 - #leaves) * k and
// (1 - #leaves) * k. Those deltas are NEGATIVE for any real subtree, and a
// raw AIC threshold would prune every fresh split before its children could
// learn; the paper therefore requires "G >= threshold >= 0" for structural
// reductions (Sec. V-C), so the parameter-delta term is clamped at zero and
// every reduction must still clear the -log(eps) confidence margin.

double DynamicModelTree::SplitThreshold() const {
  return static_cast<double>(model_params_) - std::log(config_.epsilon);
}

double DynamicModelTree::ReplaceThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (2.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

double DynamicModelTree::PruneThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (1.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

// --- Gains -------------------------------------------------------------------

int DynamicModelTree::BestCandidateOf(const Node& node, double reference_loss,
                                      double* best_gain) const {
  return BestCandidate(node.candidates, node.loss_sum, node.grad_sum,
                       node.count, reference_loss,
                       config_.gradient_step_size, best_gain);
}

// --- Training ----------------------------------------------------------------

void DynamicModelTree::PartialFit(const Batch& batch) {
  DMT_CHECK(static_cast<int>(batch.num_features()) == config_.num_features);
  bool clean = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const int y = batch.label(i);
    if (y < 0 || y >= config_.num_classes || !RowIsFinite(batch.row(i))) {
      clean = false;
      break;
    }
  }
  if (clean) {
    PartialFitClean(batch);
    return;
  }
  // Contaminated batch: copy the usable rows aside (DESIGN.md Sec. 8).
  if (clean_batch_ == nullptr) {
    clean_batch_ = std::make_unique<Batch>(batch.num_features());
  }
  clean_batch_->clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const int y = batch.label(i);
    if (y >= 0 && y < config_.num_classes && RowIsFinite(batch.row(i))) {
      clean_batch_->Add(batch.row(i), y);
    }
  }
  if (!clean_batch_->empty()) PartialFitClean(*clean_batch_);
}

void DynamicModelTree::PartialFitClean(const Batch& batch) {
  ++time_step_;
  scratch_.root_rows.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) scratch_.root_rows[i] = i;
  // Lazy ascending-value orders, shared by every node: a feature is sorted
  // the first time an evaluating node asks for it, so batches on which the
  // scheduler defers every node never sort at all.
  BeginFeatureOrders(batch, config_.num_features, &scratch_);
  UpdateNode(root_.get(), batch, scratch_.root_rows, 0);
}

void DynamicModelTree::UpdateNode(Node* node, const Batch& batch,
                                  std::span<const std::size_t> rows,
                                  std::size_t depth) {
  if (rows.empty()) return;
  if (!node->is_leaf()) {
    if (scratch_.left_rows.size() <= depth) {
      scratch_.left_rows.resize(depth + 1);
      scratch_.right_rows.resize(depth + 1);
    }
    std::vector<std::size_t>& left_rows = scratch_.left_rows[depth];
    std::vector<std::size_t>& right_rows = scratch_.right_rows[depth];
    left_rows.clear();
    right_rows.clear();
    {
      obs::ScopedPhaseTimer route_timer(telemetry_.phase_route);
      for (std::size_t r : rows) {
        if (batch.row(r)[node->split_feature] <= node->split_value) {
          left_rows.push_back(r);
        } else {
          right_rows.push_back(r);
        }
      }
    }
    // Bottom-up: children update (and possibly restructure) first. Both
    // spans are taken before recursing: a deeper call may grow the outer
    // scratch vectors, which moves the inner vector objects (invalidating
    // references to them) but keeps their heap buffers, so the spans stay
    // valid.
    const std::span<const std::size_t> left_span(left_rows);
    const std::span<const std::size_t> right_span(right_rows);
    UpdateNode(node->left.get(), batch, left_span, depth + 1);
    UpdateNode(node->right.get(), batch, right_span, depth + 1);
  }

  const bool evaluated = UpdateStatistics(node, batch, rows);
  if (!evaluated) return;  // deferred: no structural checks this batch

  if (node->is_leaf()) {
    CheckLeafSplit(node, depth);
  } else {
    CheckInnerReplacement(node, depth);
  }
}

bool DynamicModelTree::UpdateStatistics(Node* node, const Batch& batch,
                                        std::span<const std::size_t> rows) {
  const CandidateUpdateParams params{
      .num_features = config_.num_features,
      .max_candidates = config_.max_candidates,
      .replacement_rate = config_.replacement_rate,
      .max_proposals_per_feature = config_.max_proposals_per_feature,
      .gradient_step_size = config_.gradient_step_size,
      .order_buckets = config_.order_buckets,
      .proposals_counter = telemetry_.candidate_proposals,
      .appends_counter = telemetry_.candidate_appends,
      .evictions_counter = telemetry_.candidate_evictions,
      .bucket_evals_counter = telemetry_.bucket_evals,
      .bucket_proposals_counter = telemetry_.bucket_proposals,
  };
  // Phase 1, every batch: tile gather, model step, tallies, per-sample
  // gradients.
  double batch_loss = 0.0;
  {
    obs::ScopedPhaseTimer model_timer(telemetry_.phase_model_step);
    batch_loss = AccumulateNodeStatistics(
        batch, rows, &node->model, &node->loss_sum,
        std::span<double>(node->grad_sum), &node->count, &scratch_);
  }

  // Scheduler decision AFTER absorbing this batch, so gain_test_every = 1
  // always evaluates (exact mode) and a node is tested the moment the
  // evidence since its last test crosses either trigger.
  node->samples_since_test += static_cast<double>(rows.size());
  node->loss_since_test += batch_loss;
  const bool due = node->samples_since_test >=
                   static_cast<double>(config_.gain_test_every);
  const bool dirty = node->loss_since_test >= config_.gain_test_threshold;
  if (!due && !dirty) {
    // Phase 2, skip path: stored candidates still absorb the batch.
    obs::ScopedPhaseTimer scatter_timer(telemetry_.phase_scatter);
    ScatterStoredOnly(batch, rows, &node->candidates, &scratch_);
    DMT_TELEMETRY_COUNT(telemetry_.gain_tests_skipped);
    return false;
  }
  if (dirty && !due) DMT_TELEMETRY_COUNT(telemetry_.dirty_nodes);

  // Phase 2, evaluation path: scatter + fresh proposals + replacement.
  {
    obs::ScopedPhaseTimer gain_timer(telemetry_.phase_gain_battery);
    ScatterAndPropose(params, batch, rows, batch_loss, node->loss_sum,
                      std::span<const double>(node->grad_sum), node->count,
                      &node->candidates, &scratch_);
  }
  node->samples_since_test = 0.0;
  node->loss_since_test = 0.0;
  DMT_TELEMETRY_COUNT(telemetry_.gain_tests_run);
  return true;
}

void DynamicModelTree::CheckLeafSplit(Node* node, std::size_t depth) {
  double gain = 0.0;
  const int best = BestCandidateOf(*node, node->loss_sum, &gain);  // Eq. (3)
  if (best < 0) return;
  DMT_TELEMETRY_COUNT(telemetry_.gain_tests);
  if (gain < SplitThreshold()) return;
  DMT_TELEMETRY_COUNT(telemetry_.gain_tests_passed);
  DMT_TELEMETRY_COUNT(telemetry_.splits);

  const int feature = node->candidates.feature(best);
  const double value = node->candidates.value(best);
  node->split_feature = feature;
  node->split_value = value;
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  // Restart this node's statistics window so the subtree comparisons of
  // Eqs. (4)-(5) are made over aligned windows.
  node->ResetStats();
  ++splits_performed_;
  RecordEvent({.kind = StructuralEvent::Kind::kSplit,
               .time_step = time_step_,
               .feature = feature,
               .value = value,
               .gain = gain,
               .threshold = SplitThreshold(),
               .depth = depth});
}

namespace {

// Sum of accumulated leaf losses and leaf count of a subtree.
template <typename NodeT>
void SubtreeLeafLoss(const NodeT* node, double* loss, std::size_t* leaves) {
  if (node->is_leaf()) {
    *loss += node->loss_sum;
    ++*leaves;
    return;
  }
  SubtreeLeafLoss(node->left.get(), loss, leaves);
  SubtreeLeafLoss(node->right.get(), loss, leaves);
}

}  // namespace

void DynamicModelTree::CheckInnerReplacement(Node* node, std::size_t depth) {
  double leaf_loss = 0.0;
  std::size_t leaves = 0;
  SubtreeLeafLoss(node, &leaf_loss, &leaves);

  // Eq. (4): best alternate split candidate vs. the current subtree.
  double replace_gain = 0.0;
  const int best = BestCandidateOf(*node, leaf_loss, &replace_gain);
  const bool candidate_is_current =
      best >= 0 && node->candidates.feature(best) == node->split_feature &&
      node->candidates.value(best) == node->split_value;
  const bool replace_tested = best >= 0 && !candidate_is_current;
  if (replace_tested) DMT_TELEMETRY_COUNT(telemetry_.gain_tests);
  const bool replace_ok =
      replace_tested && replace_gain >= ReplaceThreshold(leaves);
  if (replace_ok) DMT_TELEMETRY_COUNT(telemetry_.gain_tests_passed);

  // Eq. (5): the inner node's own model vs. the subtree.
  DMT_TELEMETRY_COUNT(telemetry_.gain_tests);
  const double prune_gain = leaf_loss - node->loss_sum;
  const bool prune_ok = prune_gain >= PruneThreshold(leaves);
  if (prune_ok) DMT_TELEMETRY_COUNT(telemetry_.gain_tests_passed);

  if (!replace_ok && !prune_ok) return;

  if (prune_ok && (!replace_ok || prune_gain >= replace_gain)) {
    // Make the inner node a leaf: the smaller of the two alternatives
    // (Sec. IV-A: "to obtain the overall smaller tree").
    node->split_feature = -1;
    node->left.reset();
    node->right.reset();
    ++prunes_;
    DMT_TELEMETRY_COUNT(telemetry_.prunes);
    RecordEvent({.kind = StructuralEvent::Kind::kPruneToLeaf,
                 .time_step = time_step_,
                 .feature = -1,
                 .value = 0.0,
                 .gain = prune_gain,
                 .threshold = PruneThreshold(leaves),
                 .depth = depth});
    return;
  }

  node->split_feature = node->candidates.feature(best);
  node->split_value = node->candidates.value(best);
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  node->ResetStats();
  ++replacements_;
  DMT_TELEMETRY_COUNT(telemetry_.replacements);
  RecordEvent({.kind = StructuralEvent::Kind::kReplaceSplit,
               .time_step = time_step_,
               .feature = node->split_feature,
               .value = node->split_value,
               .gain = replace_gain,
               .threshold = ReplaceThreshold(leaves),
               .depth = depth});
}

void DynamicModelTree::RecordEvent(StructuralEvent event) {
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin(), events_.begin() + kMaxEvents / 2);
  }
  events_.push_back(event);
}

// --- Prediction ----------------------------------------------------------------

void DynamicModelTree::PredictProbaInto(std::span<const double> x,
                                        std::span<double> out) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  node->model.PredictProbaInto(x, out);
}

std::vector<double> DynamicModelTree::LeafFeatureWeights(
    std::span<const double> x, int c) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->model.FeatureWeights(c);
}

// --- Introspection ---------------------------------------------------------------

std::size_t DynamicModelTree::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t DynamicModelTree::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t DynamicModelTree::Depth() const {
  auto walk = [&](auto&& self, const Node* node) -> std::size_t {
    if (node->is_leaf()) return 0;
    return 1 + std::max(self(self, node->left.get()),
                        self(self, node->right.get()));
  };
  return walk(walk, root_.get());
}

DynamicModelTree::RootDiagnostics DynamicModelTree::DiagnoseRoot() const {
  RootDiagnostics diagnostics;
  diagnostics.count = root_->count;
  diagnostics.num_candidates = root_->candidates.size();
  double gain = 0.0;
  if (BestCandidateOf(*root_, root_->loss_sum, &gain) >= 0) {
    diagnostics.best_gain = gain;
  }
  return diagnostics;
}

double DynamicModelTree::AccumulatedLeafLoss() const {
  double loss = 0.0;
  std::size_t leaves = 0;
  SubtreeLeafLoss(root_.get(), &loss, &leaves);
  return loss;
}

std::size_t DynamicModelTree::NumSplits() const {
  // Paper Sec. VI-D2: inner nodes plus one split per model leaf (c splits
  // for multiclass leaf classifiers).
  const std::size_t per_leaf =
      config_.num_classes == 2 ? 1
                               : static_cast<std::size_t>(config_.num_classes);
  return NumInnerNodes() + NumLeaves() * per_leaf;
}

std::size_t DynamicModelTree::NumParameters() const {
  // 1 split value per inner node; m weights per class per leaf model
  // (binary leaves count m, paper Sec. VI-D2).
  const std::size_t per_leaf =
      static_cast<std::size_t>(config_.num_features) *
      (config_.num_classes == 2 ? 1 : config_.num_classes);
  return NumInnerNodes() + NumLeaves() * per_leaf;
}

// --- Persistence ---------------------------------------------------------------

void DynamicModelTree::SaveBody(serial::Writer& writer) const {
  writer.I32(config_.num_features);
  writer.I32(config_.num_classes);
  writer.F64(config_.learning_rate);
  writer.F64(config_.gradient_step_size);
  writer.F64(config_.epsilon);
  writer.Size(config_.max_candidates);
  writer.F64(config_.replacement_rate);
  writer.Size(config_.max_proposals_per_feature);
  writer.Size(config_.gain_test_every);
  writer.F64(config_.gain_test_threshold);
  // v3 fields: training hot-path knobs (gated on reader.version() in
  // LoadBody so v2 archives keep decoding).
  writer.Size(config_.order_buckets);
  writer.Bool(config_.candidate_grad_f32);
  writer.U64(config_.seed);
  writer.Size(time_step_);
  writer.Size(splits_performed_);
  writer.Size(replacements_);
  writer.Size(prunes_);

  auto save_node = [&](auto&& self, const Node* node) -> void {
    writer.I32(node->split_feature);
    writer.F64(node->split_value);
    writer.F64(node->loss_sum);
    writer.F64(node->count);
    writer.F64(node->samples_since_test);
    writer.F64(node->loss_since_test);
    node->model.SaveState(writer);
    writer.VecF64(node->grad_sum);
    node->candidates.Save(writer);
    if (!node->is_leaf()) {
      self(self, node->left.get());
      self(self, node->right.get());
    }
  };
  save_node(save_node, root_.get());
  // Engine last: MakeLeaf draws initial GLM weights during Load, so the
  // engine is restored only after the whole tree has been rebuilt.
  writer.Engine(rng_.engine());
}

void DynamicModelTree::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagDmtClassifier);
  SaveBody(writer);
}

std::unique_ptr<DynamicModelTree> DynamicModelTree::LoadBody(
    serial::Reader& reader) {
  DmtConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "DMT feature count"));
  config.num_classes = static_cast<int>(serial::CheckedRange(
      reader.I32(), 2, serial::kMaxClasses, "DMT class count"));
  serial::Check(static_cast<std::uint64_t>(config.num_features) *
                        static_cast<std::uint64_t>(config.num_classes) <=
                    static_cast<std::uint64_t>(serial::kMaxVector),
                "DMT model dimensions exceed the archive limit");
  config.learning_rate =
      serial::CheckedFinite(reader.F64(), "DMT learning rate");
  config.gradient_step_size =
      serial::CheckedFinite(reader.F64(), "DMT gradient step size");
  config.epsilon = reader.F64();
  // The constructor DMT_CHECKs this range; a hostile archive must throw.
  serial::Check(std::isfinite(config.epsilon) && config.epsilon > 0.0 &&
                    config.epsilon <= 1.0,
                "DMT epsilon out of range");
  config.max_candidates = reader.Size(std::size_t{1} << 62);
  config.replacement_rate = reader.F64();
  serial::Check(std::isfinite(config.replacement_rate) &&
                    config.replacement_rate >= 0.0 &&
                    config.replacement_rate <= 1.0,
                "DMT replacement rate out of range");
  config.max_proposals_per_feature = reader.Size(std::size_t{1} << 62);
  config.gain_test_every = reader.Size(std::size_t{1} << 62);
  serial::Check(config.gain_test_every >= 1,
                "DMT gain test period out of range");
  config.gain_test_threshold =
      serial::CheckedFinite(reader.F64(), "DMT gain test threshold");
  serial::Check(config.gain_test_threshold >= 0.0,
                "DMT gain test threshold out of range");
  if (reader.version() >= 3) {
    config.order_buckets = reader.Size(std::size_t{1} << 20);
    config.candidate_grad_f32 = reader.Bool();
  } else {
    // v2 archives predate the hot-path knobs: restore the exact-sort, f64
    // behavior of the build that wrote them, so training continues
    // identically.
    config.order_buckets = 0;
    config.candidate_grad_f32 = false;
  }
  config.seed = reader.U64();
  auto tree = std::make_unique<DynamicModelTree>(config);
  tree->time_step_ = reader.Size(std::size_t{1} << 62);
  tree->splits_performed_ = reader.Size(std::size_t{1} << 62);
  tree->replacements_ = reader.Size(std::size_t{1} << 62);
  tree->prunes_ = reader.Size(std::size_t{1} << 62);

  auto load_node = [&](auto&& self,
                       std::size_t depth) -> std::unique_ptr<Node> {
    serial::Check(depth <= serial::kMaxTreeDepth,
                  "DMT node depth exceeds the archive limit");
    std::unique_ptr<Node> node = tree->MakeLeaf(nullptr);
    const std::int32_t split_feature = reader.I32();
    serial::Check(
        split_feature >= -1 && split_feature < config.num_features,
        "DMT split feature out of range");
    node->split_feature = static_cast<int>(split_feature);
    node->split_value = reader.F64();
    node->loss_sum = reader.F64();
    node->count = reader.F64();
    node->samples_since_test = reader.F64();
    node->loss_since_test = reader.F64();
    node->model.LoadState(reader);
    node->grad_sum = reader.VecF64Exact(
        static_cast<std::size_t>(node->model.num_params()));
    node->candidates.Load(reader);
    if (!node->is_leaf()) {
      node->left = self(self, depth + 1);
      node->right = self(self, depth + 1);
    }
    return node;
  };
  tree->root_ = load_node(load_node, 0);
  // Engine last: the MakeLeaf calls above consumed construction-time draws.
  reader.Engine(&tree->rng_.engine());
  return tree;
}

std::unique_ptr<DynamicModelTree> DynamicModelTree::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagDmtClassifier);
  return LoadBody(reader);
}

std::string DynamicModelTree::Describe(int max_weights_per_leaf) const {
  std::ostringstream out;
  auto walk = [&](auto&& self, const Node* node, std::string indent) -> void {
    if (!node->is_leaf()) {
      out << indent << "if x[" << node->split_feature
          << "] <= " << node->split_value << ":\n";
      self(self, node->left.get(), indent + "  ");
      out << indent << "else:\n";
      self(self, node->right.get(), indent + "  ");
      return;
    }
    out << indent << "leaf(n=" << node->count << "): ";
    // Largest-magnitude feature weights of the model (class 1 for binary,
    // the per-class blocks otherwise would be verbose, so class 1 is shown).
    const std::vector<double> weights =
        node->model.FeatureWeights(config_.num_classes == 2 ? 1 : 0);
    std::vector<int> idx(weights.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
      return std::abs(weights[a]) > std::abs(weights[b]);
    });
    const int shown = std::min<int>(max_weights_per_leaf,
                                    static_cast<int>(idx.size()));
    for (int i = 0; i < shown; ++i) {
      out << (i == 0 ? "" : ", ") << "w[" << idx[i] << "]=" << weights[idx[i]];
    }
    out << "\n";
  };
  walk(walk, root_.get(), "");
  return out.str();
}

}  // namespace dmt::core
