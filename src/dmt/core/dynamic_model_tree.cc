#include "dmt/core/dynamic_model_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "dmt/common/check.h"
#include "dmt/common/math.h"

namespace dmt::core {

struct DynamicModelTree::Node {
  // Split predicate; split_feature < 0 marks a leaf.
  int split_feature = -1;
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  // The simple model, trained at every time step regardless of node type
  // (inner nodes keep learning -- Sec. V-D of the paper).
  linear::Glm model;

  // Accumulated node statistics (Algorithm 1, lines 1-3), covering the
  // window since the node's last structural change.
  double loss_sum = 0.0;
  std::vector<double> grad_sum;
  double count = 0.0;

  // Bounded split-candidate store (Sec. V-D).
  std::vector<CandidateStats> candidates;

  Node(const linear::GlmConfig& glm_config, Rng* rng)
      : model(glm_config, rng), grad_sum(model.num_params(), 0.0) {}

  bool is_leaf() const { return split_feature < 0; }

  void ResetStats() {
    loss_sum = 0.0;
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0);
    count = 0.0;
    candidates.clear();
  }
};

DynamicModelTree::DynamicModelTree(const DmtConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.num_classes >= 2);
  DMT_CHECK(config.epsilon > 0.0 && config.epsilon <= 1.0);
  DMT_CHECK(config.replacement_rate >= 0.0 && config.replacement_rate <= 1.0);
  if (config_.max_candidates == 0) {
    config_.max_candidates = 3 * static_cast<std::size_t>(config.num_features);
  }
  root_ = MakeLeaf(nullptr);
  model_params_ = root_->model.num_params();
}

DynamicModelTree::~DynamicModelTree() = default;

std::unique_ptr<DynamicModelTree::Node> DynamicModelTree::MakeLeaf(
    const linear::Glm* warm_start_from) {
  linear::GlmConfig glm_config;
  glm_config.num_features = config_.num_features;
  glm_config.num_classes = config_.num_classes;
  glm_config.learning_rate = config_.learning_rate;
  auto node = std::make_unique<Node>(glm_config, &rng_);
  if (warm_start_from != nullptr) node->model.WarmStartFrom(*warm_start_from);
  return node;
}

// --- Thresholds (Sec. V-C) --------------------------------------------------
//
// Eq. (11) for a leaf split: G >= k_C + k_Cbar - k_S - log(eps) = k - log(eps)
// with a single model type. The analogous derivation for Eqs. (4)/(5)
// compares 2 (respectively 1) new models against the #leaves models of the
// replaced subtree, giving parameter deltas (2 - #leaves) * k and
// (1 - #leaves) * k. Those deltas are NEGATIVE for any real subtree, and a
// raw AIC threshold would prune every fresh split before its children could
// learn; the paper therefore requires "G >= threshold >= 0" for structural
// reductions (Sec. V-C), so the parameter-delta term is clamped at zero and
// every reduction must still clear the -log(eps) confidence margin.

double DynamicModelTree::SplitThreshold() const {
  return static_cast<double>(model_params_) - std::log(config_.epsilon);
}

double DynamicModelTree::ReplaceThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (2.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

double DynamicModelTree::PruneThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (1.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

// --- Gains -------------------------------------------------------------------

double DynamicModelTree::CandidateGain(const Node& node,
                                       const CandidateStats& candidate,
                                       double reference_loss) const {
  // Degenerate candidates (one empty side) cannot form a split.
  if (candidate.count <= 0.0 || candidate.count >= node.count) {
    return -std::numeric_limits<double>::infinity();
  }
  const double lambda = config_.gradient_step_size;
  const double left = ApproxCandidateLoss(candidate.loss, candidate.grad,
                                          candidate.count, lambda);
  const double right = ApproxComplementLoss(node.loss_sum, node.grad_sum,
                                            node.count, candidate, lambda);
  return reference_loss - left - right;  // Eqs. (3) / (4)
}

const CandidateStats* DynamicModelTree::BestCandidate(
    const Node& node, double reference_loss, double* best_gain) const {
  const CandidateStats* best = nullptr;
  *best_gain = -std::numeric_limits<double>::infinity();
  for (const CandidateStats& candidate : node.candidates) {
    const double gain = CandidateGain(node, candidate, reference_loss);
    if (gain > *best_gain) {
      *best_gain = gain;
      best = &candidate;
    }
  }
  return best;
}

// --- Training ----------------------------------------------------------------

void DynamicModelTree::PartialFit(const Batch& batch) {
  DMT_CHECK(static_cast<int>(batch.num_features()) == config_.num_features);
  ++time_step_;
  std::vector<std::size_t> rows(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) rows[i] = i;
  UpdateNode(root_.get(), batch, std::move(rows), 0);
}

void DynamicModelTree::UpdateNode(Node* node, const Batch& batch,
                                  std::vector<std::size_t> rows,
                                  std::size_t depth) {
  if (rows.empty()) return;
  if (!node->is_leaf()) {
    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    for (std::size_t r : rows) {
      if (batch.row(r)[node->split_feature] <= node->split_value) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    // Bottom-up: children update (and possibly restructure) first.
    UpdateNode(node->left.get(), batch, std::move(left_rows), depth + 1);
    UpdateNode(node->right.get(), batch, std::move(right_rows), depth + 1);
  }

  UpdateStatistics(node, batch, rows);

  if (node->is_leaf()) {
    CheckLeafSplit(node, depth);
  } else {
    CheckInnerReplacement(node, depth);
  }
}

void DynamicModelTree::UpdateStatistics(Node* node, const Batch& batch,
                                        const std::vector<std::size_t>& rows) {
  // 1. SGD update of the simple model (Eq. 1 via gradient descent).
  node->model.FitRows(batch, rows);

  // 2. Per-sample loss and gradient at the updated parameters.
  const std::size_t n = rows.size();
  const std::size_t k = static_cast<std::size_t>(model_params_);
  std::vector<double> sample_loss(n);
  std::vector<double> sample_grad(n * k);
  double batch_loss = 0.0;
  std::vector<double> batch_grad(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<double> g(sample_grad.data() + i * k, k);
    sample_loss[i] = node->model.LossAndGradientOne(
        batch.row(rows[i]), batch.label(rows[i]), g);
    batch_loss += sample_loss[i];
    AddInPlace(batch_grad, g);
  }

  // 3. Increment node statistics (Algorithm 1, lines 1-3).
  node->loss_sum += batch_loss;
  AddInPlace(node->grad_sum, batch_grad);
  node->count += static_cast<double>(n);

  // 4. Per feature: update stored candidates with this batch's left-child
  //    contributions, and score fresh candidate proposals from the batch
  //    (Algorithm 1, lines 6-11; Sec. V-D candidate management).
  struct Proposal {
    int feature;
    double value;
    double est_gain;
    double loss;
    std::vector<double> grad;
    double count;
  };
  std::vector<Proposal> proposals;

  // Sort row positions once per feature.
  std::vector<std::size_t> order(n);
  std::vector<double> prefix_grad(k);
  for (int j = 0; j < config_.num_features; ++j) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return batch.row(rows[a])[j] < batch.row(rows[b])[j];
    });

    // Stored candidates of this feature, in ascending threshold order.
    std::vector<CandidateStats*> stored;
    for (CandidateStats& c : node->candidates) {
      if (c.feature == j) stored.push_back(&c);
    }
    std::sort(stored.begin(), stored.end(),
              [](const CandidateStats* a, const CandidateStats* b) {
                return a->value < b->value;
              });

    // Which observed values to propose as new candidates.
    std::size_t proposal_stride = 1;
    if (config_.max_proposals_per_feature > 0 &&
        n > config_.max_proposals_per_feature) {
      proposal_stride = n / config_.max_proposals_per_feature;
    }

    double run_loss = 0.0;
    std::fill(prefix_grad.begin(), prefix_grad.end(), 0.0);
    double run_count = 0.0;
    std::size_t stored_pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = rows[order[i]];
      const double value = batch.row(row)[j];
      // Stored candidates strictly below this value receive the prefix
      // accumulated so far (their left side excludes this observation).
      while (stored_pos < stored.size() &&
             stored[stored_pos]->value < value) {
        CandidateStats* c = stored[stored_pos];
        c->loss += run_loss;
        AddInPlace(c->grad, prefix_grad);
        c->count += run_count;
        ++stored_pos;
      }
      run_loss += sample_loss[order[i]];
      AddInPlace(prefix_grad,
                 {sample_grad.data() + order[i] * k, k});
      run_count += 1.0;

      // Value boundary: the split "x_j <= value" is a candidate.
      const bool boundary =
          i + 1 == n || batch.row(rows[order[i + 1]])[j] > value;
      if (!boundary || i + 1 == n) continue;  // the full batch is no split
      if ((i + 1) % proposal_stride != 0) continue;

      // Estimated gain from this batch alone (Eq. 3 with Eq. 7 losses).
      CandidateStats tentative(j, value, k);
      tentative.loss = run_loss;
      tentative.grad.assign(prefix_grad.begin(), prefix_grad.end());
      tentative.count = run_count;
      const double lambda = config_.gradient_step_size;
      const double left_hat = ApproxCandidateLoss(run_loss, tentative.grad,
                                                  run_count, lambda);
      double right_norm_sq = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double g = batch_grad[p] - prefix_grad[p];
        right_norm_sq += g * g;
      }
      const double right_count = static_cast<double>(n) - run_count;
      const double right_hat =
          (batch_loss - run_loss) -
          (right_count > 0.0 ? lambda / right_count * right_norm_sq : 0.0);
      const double est_gain = batch_loss - left_hat - right_hat;
      proposals.push_back({j, value, est_gain, run_loss,
                           std::move(tentative.grad), run_count});
    }
    // Remaining stored candidates (threshold >= max value) absorb the full
    // batch on their left side.
    while (stored_pos < stored.size()) {
      CandidateStats* c = stored[stored_pos];
      c->loss += batch_loss;
      AddInPlace(c->grad, batch_grad);
      c->count += static_cast<double>(n);
      ++stored_pos;
    }
  }

  // 5. Candidate replacement: keep the store bounded at max_candidates,
  //    allowing at most replacement_rate of it to turn over per step.
  std::sort(proposals.begin(), proposals.end(),
            [](const Proposal& a, const Proposal& b) {
              return a.est_gain > b.est_gain;
            });
  std::size_t budget = static_cast<std::size_t>(
      config_.replacement_rate *
      static_cast<double>(config_.max_candidates));
  // Gain estimates of the stored candidates, computed once per step and
  // maintained across replacements (recomputing per proposal would make the
  // update quadratic in the store size).
  std::vector<double> stored_gain(node->candidates.size());
  for (std::size_t c = 0; c < node->candidates.size(); ++c) {
    stored_gain[c] =
        CandidateGain(*node, node->candidates[c], node->loss_sum);
  }
  for (Proposal& p : proposals) {
    const bool exists =
        std::any_of(node->candidates.begin(), node->candidates.end(),
                    [&](const CandidateStats& c) {
                      return c.feature == p.feature && c.value == p.value;
                    });
    if (exists) continue;
    CandidateStats fresh(p.feature, p.value, k);
    fresh.loss = p.loss;
    fresh.grad = std::move(p.grad);
    fresh.count = p.count;
    if (node->candidates.size() < config_.max_candidates) {
      node->candidates.push_back(std::move(fresh));
      stored_gain.push_back(
          CandidateGain(*node, node->candidates.back(), node->loss_sum));
      continue;
    }
    if (budget == 0) break;
    // Replace the stored candidate with the lowest current gain estimate,
    // if the newcomer looks strictly better.
    const std::size_t worst = static_cast<std::size_t>(
        std::min_element(stored_gain.begin(), stored_gain.end()) -
        stored_gain.begin());
    if (p.est_gain > stored_gain[worst]) {
      node->candidates[worst] = std::move(fresh);
      stored_gain[worst] =
          CandidateGain(*node, node->candidates[worst], node->loss_sum);
      --budget;
    }
  }
}

void DynamicModelTree::CheckLeafSplit(Node* node, std::size_t depth) {
  double gain = 0.0;
  const CandidateStats* best =
      BestCandidate(*node, node->loss_sum, &gain);  // Eq. (3)
  if (best == nullptr || gain < SplitThreshold()) return;

  const int feature = best->feature;
  const double value = best->value;
  node->split_feature = feature;
  node->split_value = value;
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  // Restart this node's statistics window so the subtree comparisons of
  // Eqs. (4)-(5) are made over aligned windows.
  node->ResetStats();
  ++splits_performed_;
  RecordEvent({.kind = StructuralEvent::Kind::kSplit,
               .time_step = time_step_,
               .feature = feature,
               .value = value,
               .gain = gain,
               .threshold = SplitThreshold(),
               .depth = depth});
}

namespace {

// Sum of accumulated leaf losses and leaf count of a subtree.
template <typename NodeT>
void SubtreeLeafLoss(const NodeT* node, double* loss, std::size_t* leaves) {
  if (node->is_leaf()) {
    *loss += node->loss_sum;
    ++*leaves;
    return;
  }
  SubtreeLeafLoss(node->left.get(), loss, leaves);
  SubtreeLeafLoss(node->right.get(), loss, leaves);
}

}  // namespace

void DynamicModelTree::CheckInnerReplacement(Node* node, std::size_t depth) {
  double leaf_loss = 0.0;
  std::size_t leaves = 0;
  SubtreeLeafLoss(node, &leaf_loss, &leaves);

  // Eq. (4): best alternate split candidate vs. the current subtree.
  double replace_gain = 0.0;
  const CandidateStats* best = BestCandidate(*node, leaf_loss, &replace_gain);
  const bool candidate_is_current =
      best != nullptr && best->feature == node->split_feature &&
      best->value == node->split_value;
  const bool replace_ok = best != nullptr && !candidate_is_current &&
                          replace_gain >= ReplaceThreshold(leaves);

  // Eq. (5): the inner node's own model vs. the subtree.
  const double prune_gain = leaf_loss - node->loss_sum;
  const bool prune_ok = prune_gain >= PruneThreshold(leaves);

  if (!replace_ok && !prune_ok) return;

  if (prune_ok && (!replace_ok || prune_gain >= replace_gain)) {
    // Make the inner node a leaf: the smaller of the two alternatives
    // (Sec. IV-A: "to obtain the overall smaller tree").
    node->split_feature = -1;
    node->left.reset();
    node->right.reset();
    ++prunes_;
    RecordEvent({.kind = StructuralEvent::Kind::kPruneToLeaf,
                 .time_step = time_step_,
                 .feature = -1,
                 .value = 0.0,
                 .gain = prune_gain,
                 .threshold = PruneThreshold(leaves),
                 .depth = depth});
    return;
  }

  node->split_feature = best->feature;
  node->split_value = best->value;
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  node->ResetStats();
  ++replacements_;
  RecordEvent({.kind = StructuralEvent::Kind::kReplaceSplit,
               .time_step = time_step_,
               .feature = node->split_feature,
               .value = node->split_value,
               .gain = replace_gain,
               .threshold = ReplaceThreshold(leaves),
               .depth = depth});
}

void DynamicModelTree::RecordEvent(StructuralEvent event) {
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin(), events_.begin() + kMaxEvents / 2);
  }
  events_.push_back(event);
}

// --- Prediction ----------------------------------------------------------------

void DynamicModelTree::PredictProbaInto(std::span<const double> x,
                                        std::span<double> out) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  node->model.PredictProbaInto(x, out);
}

std::vector<double> DynamicModelTree::LeafFeatureWeights(
    std::span<const double> x, int c) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->model.FeatureWeights(c);
}

// --- Introspection ---------------------------------------------------------------

std::size_t DynamicModelTree::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t DynamicModelTree::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t DynamicModelTree::Depth() const {
  auto walk = [&](auto&& self, const Node* node) -> std::size_t {
    if (node->is_leaf()) return 0;
    return 1 + std::max(self(self, node->left.get()),
                        self(self, node->right.get()));
  };
  return walk(walk, root_.get());
}

DynamicModelTree::RootDiagnostics DynamicModelTree::DiagnoseRoot() const {
  RootDiagnostics diagnostics;
  diagnostics.count = root_->count;
  diagnostics.num_candidates = root_->candidates.size();
  double gain = 0.0;
  if (BestCandidate(*root_, root_->loss_sum, &gain) != nullptr) {
    diagnostics.best_gain = gain;
  }
  return diagnostics;
}

double DynamicModelTree::AccumulatedLeafLoss() const {
  double loss = 0.0;
  std::size_t leaves = 0;
  SubtreeLeafLoss(root_.get(), &loss, &leaves);
  return loss;
}

std::size_t DynamicModelTree::NumSplits() const {
  // Paper Sec. VI-D2: inner nodes plus one split per model leaf (c splits
  // for multiclass leaf classifiers).
  const std::size_t per_leaf =
      config_.num_classes == 2 ? 1
                               : static_cast<std::size_t>(config_.num_classes);
  return NumInnerNodes() + NumLeaves() * per_leaf;
}

std::size_t DynamicModelTree::NumParameters() const {
  // 1 split value per inner node; m weights per class per leaf model
  // (binary leaves count m, paper Sec. VI-D2).
  const std::size_t per_leaf =
      static_cast<std::size_t>(config_.num_features) *
      (config_.num_classes == 2 ? 1 : config_.num_classes);
  return NumInnerNodes() + NumLeaves() * per_leaf;
}

// --- Persistence ---------------------------------------------------------------

namespace {

// Doubles are persisted as their IEEE-754 bit patterns (hex), because
// hexfloat round-trips are not supported by istream extraction.
void WriteDouble(std::ostream& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  out << std::hex << bits << std::dec;
}

double ReadDouble(std::istream& in) {
  std::uint64_t bits = 0;
  in >> std::hex >> bits >> std::dec;
  DMT_CHECK(!in.fail());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void WriteDoubles(std::ostream& out, const std::vector<double>& values) {
  out << values.size();
  for (double v : values) {
    out << ' ';
    WriteDouble(out, v);
  }
  out << '\n';
}

std::vector<double> ReadDoubles(std::istream& in) {
  std::size_t count = 0;
  in >> count;
  DMT_CHECK(!in.fail());
  std::vector<double> values(count);
  for (double& v : values) v = ReadDouble(in);
  return values;
}

}  // namespace

void DynamicModelTree::Save(std::ostream& out) const {
  out << "DMTv1\n";
  out << config_.num_features << ' ' << config_.num_classes << ' ';
  WriteDouble(out, config_.learning_rate);
  out << ' ';
  WriteDouble(out, config_.gradient_step_size);
  out << ' ';
  WriteDouble(out, config_.epsilon);
  out << ' ' << config_.max_candidates << ' ';
  WriteDouble(out, config_.replacement_rate);
  out << ' ' << config_.max_proposals_per_feature << ' ' << config_.seed
      << '\n';
  // RNG engine state (std::mt19937_64 supports textual (de)serialization).
  out << rng_.engine() << '\n';
  out << time_step_ << ' ' << splits_performed_ << ' ' << replacements_
      << ' ' << prunes_ << '\n';

  auto save_node = [&](auto&& self, const Node* node) -> void {
    out << node->split_feature << ' ';
    WriteDouble(out, node->split_value);
    out << ' ';
    WriteDouble(out, node->loss_sum);
    out << ' ';
    WriteDouble(out, node->count);
    out << ' ' << node->model.steps() << '\n';
    WriteDoubles(out, node->model.params());
    WriteDoubles(out, node->grad_sum);
    out << node->candidates.size() << '\n';
    for (const CandidateStats& candidate : node->candidates) {
      out << candidate.feature << ' ';
      WriteDouble(out, candidate.value);
      out << ' ';
      WriteDouble(out, candidate.loss);
      out << ' ';
      WriteDouble(out, candidate.count);
      out << '\n';
      WriteDoubles(out, candidate.grad);
    }
    if (!node->is_leaf()) {
      self(self, node->left.get());
      self(self, node->right.get());
    }
  };
  save_node(save_node, root_.get());
}

std::unique_ptr<DynamicModelTree> DynamicModelTree::Load(std::istream& in) {
  std::string magic;
  in >> magic;
  DMT_CHECK(magic == "DMTv1");
  DmtConfig config;
  in >> config.num_features >> config.num_classes;
  config.learning_rate = ReadDouble(in);
  config.gradient_step_size = ReadDouble(in);
  config.epsilon = ReadDouble(in);
  in >> config.max_candidates;
  config.replacement_rate = ReadDouble(in);
  in >> config.max_proposals_per_feature >> config.seed;
  DMT_CHECK(in.good());
  auto tree = std::make_unique<DynamicModelTree>(config);
  in >> tree->rng_.engine();
  in >> tree->time_step_ >> tree->splits_performed_ >> tree->replacements_ >>
      tree->prunes_;
  DMT_CHECK(in.good());

  auto load_node = [&](auto&& self) -> std::unique_ptr<Node> {
    std::unique_ptr<Node> node = tree->MakeLeaf(nullptr);
    std::size_t model_steps = 0;
    in >> node->split_feature;
    node->split_value = ReadDouble(in);
    node->loss_sum = ReadDouble(in);
    node->count = ReadDouble(in);
    in >> model_steps;
    DMT_CHECK(!in.fail());
    node->model.set_steps(model_steps);
    node->model.mutable_params() = ReadDoubles(in);
    DMT_CHECK(static_cast<int>(node->model.params().size()) ==
              node->model.num_params());
    node->grad_sum = ReadDoubles(in);
    std::size_t num_candidates = 0;
    in >> num_candidates;
    DMT_CHECK(!in.fail());
    for (std::size_t c = 0; c < num_candidates; ++c) {
      CandidateStats candidate;
      in >> candidate.feature;
      candidate.value = ReadDouble(in);
      candidate.loss = ReadDouble(in);
      candidate.count = ReadDouble(in);
      DMT_CHECK(!in.fail());
      candidate.grad = ReadDoubles(in);
      node->candidates.push_back(std::move(candidate));
    }
    if (node->split_feature >= 0) {
      node->left = self(self);
      node->right = self(self);
    }
    return node;
  };
  tree->root_ = load_node(load_node);
  return tree;
}

std::string DynamicModelTree::Describe(int max_weights_per_leaf) const {
  std::ostringstream out;
  auto walk = [&](auto&& self, const Node* node, std::string indent) -> void {
    if (!node->is_leaf()) {
      out << indent << "if x[" << node->split_feature
          << "] <= " << node->split_value << ":\n";
      self(self, node->left.get(), indent + "  ");
      out << indent << "else:\n";
      self(self, node->right.get(), indent + "  ");
      return;
    }
    out << indent << "leaf(n=" << node->count << "): ";
    // Largest-magnitude feature weights of the model (class 1 for binary,
    // the per-class blocks otherwise would be verbose, so class 1 is shown).
    const std::vector<double> weights =
        node->model.FeatureWeights(config_.num_classes == 2 ? 1 : 0);
    std::vector<int> idx(weights.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
      return std::abs(weights[a]) > std::abs(weights[b]);
    });
    const int shown = std::min<int>(max_weights_per_leaf,
                                    static_cast<int>(idx.size()));
    for (int i = 0; i < shown; ++i) {
      out << (i == 0 ? "" : ", ") << "w[" << idx[i] << "]=" << weights[idx[i]];
    }
    out << "\n";
  };
  walk(walk, root_.get(), "");
  return out.str();
}

}  // namespace dmt::core
