#include "dmt/core/dmt_regressor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dmt/common/check.h"
#include "dmt/common/math.h"
#include "dmt/common/sanitize.h"
#include "dmt/serial/model_io.h"

namespace dmt::core {

struct DmtRegressor::Node {
  int split_feature = -1;  // < 0 marks a leaf
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  linear::LinearRegressor model;
  double loss_sum = 0.0;
  std::vector<double> grad_sum;
  double count = 0.0;
  CandidateStore candidates;  // SoA split-candidate store (Sec. V-D)

  // Dirty-node scheduler state (see DmtRegressorConfig::gain_test_*).
  double samples_since_test = 0.0;
  double loss_since_test = 0.0;

  Node(const linear::LinearRegressorConfig& model_config, Rng* rng,
       bool grad_f32)
      : model(model_config, rng),
        grad_sum(model.num_params(), 0.0),
        candidates(static_cast<std::size_t>(model.num_params()), grad_f32) {}

  bool is_leaf() const { return split_feature < 0; }

  void ResetStats() {
    loss_sum = 0.0;
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0);
    count = 0.0;
    candidates.Clear();
    samples_since_test = 0.0;
    loss_since_test = 0.0;
  }
};

DmtRegressor::DmtRegressor(const DmtRegressorConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.epsilon > 0.0 && config.epsilon <= 1.0);
  DMT_CHECK(config.gain_test_every >= 1);
  DMT_CHECK(std::isfinite(config.gain_test_threshold) &&
            config.gain_test_threshold >= 0.0);
  DMT_CHECK(config.order_buckets <= (std::size_t{1} << 20));
  if (config_.max_candidates == 0) {
    config_.max_candidates =
        3 * static_cast<std::size_t>(config.num_features);
  }
  root_ = MakeLeaf(nullptr);
  model_params_ = root_->model.num_params();
  standardized_ =
      std::make_unique<linear::RegressionBatch>(config_.num_features);
}

DmtRegressor::~DmtRegressor() = default;

std::unique_ptr<DmtRegressor::Node> DmtRegressor::MakeLeaf(
    const linear::LinearRegressor* warm_start) {
  linear::LinearRegressorConfig model_config;
  model_config.num_features = config_.num_features;
  model_config.learning_rate = config_.learning_rate;
  auto node =
      std::make_unique<Node>(model_config, &rng_, config_.candidate_grad_f32);
  if (warm_start != nullptr) node->model.WarmStartFrom(*warm_start);
  return node;
}

double DmtRegressor::SplitThreshold() const {
  return static_cast<double>(model_params_) - std::log(config_.epsilon);
}

double DmtRegressor::ReplaceThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (2.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

double DmtRegressor::PruneThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (1.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

int DmtRegressor::BestCandidateOf(const Node& node, double reference_loss,
                                  double* best_gain) const {
  return BestCandidate(node.candidates, node.loss_sum, node.grad_sum,
                       node.count, reference_loss,
                       config_.gradient_step_size, best_gain);
}

void DmtRegressor::PartialFit(const linear::RegressionBatch& batch) {
  DMT_CHECK(static_cast<int>(batch.num_features()) == config_.num_features);
  // Rows with a non-finite feature or target are unusable: they would
  // poison the running target statistics and break ComputeFeatureOrders'
  // sort comparator (NaN violates strict weak ordering). Skip them here;
  // the standardized copy below is the natural filter point.
  auto usable = [&](std::size_t i) {
    return std::isfinite(batch.target(i)) && RowIsFinite(batch.row(i));
  };
  // Standardize targets with the running estimates (updated first, so the
  // very first batch already has a usable scale).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (usable(i)) target_stats_.Add(batch.target(i));
  }
  const double mean = target_stats_.mean();
  const double std = std::max(target_stats_.stddev(), 1e-9);
  standardized_->clear();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (usable(i)) {
      standardized_->Add(batch.row(i), (batch.target(i) - mean) / std);
    }
  }
  if (standardized_->empty()) return;
  ++time_step_;
  scratch_.root_rows.resize(standardized_->size());
  for (std::size_t i = 0; i < standardized_->size(); ++i) {
    scratch_.root_rows[i] = i;
  }
  // Lazy ascending-value orders, shared by every node; only evaluating
  // nodes trigger the per-feature sort.
  BeginFeatureOrders(*standardized_, config_.num_features, &scratch_);
  UpdateNode(root_.get(), *standardized_, scratch_.root_rows, 0);
}

void DmtRegressor::UpdateNode(Node* node,
                              const linear::RegressionBatch& batch,
                              std::span<const std::size_t> rows,
                              std::size_t depth) {
  if (rows.empty()) return;
  if (!node->is_leaf()) {
    if (scratch_.left_rows.size() <= depth) {
      scratch_.left_rows.resize(depth + 1);
      scratch_.right_rows.resize(depth + 1);
    }
    std::vector<std::size_t>& left_rows = scratch_.left_rows[depth];
    std::vector<std::size_t>& right_rows = scratch_.right_rows[depth];
    left_rows.clear();
    right_rows.clear();
    for (std::size_t r : rows) {
      if (batch.row(r)[node->split_feature] <= node->split_value) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    // Spans taken before recursing: deeper calls may grow the outer
    // scratch vectors, which moves the inner vector objects but keeps
    // their heap buffers, so the spans stay valid.
    const std::span<const std::size_t> left_span(left_rows);
    const std::span<const std::size_t> right_span(right_rows);
    UpdateNode(node->left.get(), batch, left_span, depth + 1);
    UpdateNode(node->right.get(), batch, right_span, depth + 1);
  }
  const bool evaluated = UpdateStatistics(node, batch, rows);
  if (!evaluated) return;  // deferred: no structural checks this batch
  if (node->is_leaf()) {
    CheckLeafSplit(node, depth);
  } else {
    CheckInnerReplacement(node, depth);
  }
}

bool DmtRegressor::UpdateStatistics(Node* node,
                                    const linear::RegressionBatch& batch,
                                    std::span<const std::size_t> rows) {
  const CandidateUpdateParams params{
      .num_features = config_.num_features,
      .max_candidates = config_.max_candidates,
      .replacement_rate = config_.replacement_rate,
      .max_proposals_per_feature = config_.max_proposals_per_feature,
      .gradient_step_size = config_.gradient_step_size,
      .order_buckets = config_.order_buckets,
  };
  const double batch_loss = AccumulateNodeStatistics(
      batch, rows, &node->model, &node->loss_sum,
      std::span<double>(node->grad_sum), &node->count, &scratch_);

  // Scheduler decision after absorbing the batch (gain_test_every = 1
  // therefore always evaluates: exact mode).
  node->samples_since_test += static_cast<double>(rows.size());
  node->loss_since_test += batch_loss;
  const bool due = node->samples_since_test >=
                   static_cast<double>(config_.gain_test_every);
  const bool dirty = node->loss_since_test >= config_.gain_test_threshold;
  if (!due && !dirty) {
    ScatterStoredOnly(batch, rows, &node->candidates, &scratch_);
    return false;
  }
  ScatterAndPropose(params, batch, rows, batch_loss, node->loss_sum,
                    std::span<const double>(node->grad_sum), node->count,
                    &node->candidates, &scratch_);
  node->samples_since_test = 0.0;
  node->loss_since_test = 0.0;
  return true;
}

void DmtRegressor::CheckLeafSplit(Node* node, std::size_t depth) {
  double gain = 0.0;
  const int best = BestCandidateOf(*node, node->loss_sum, &gain);
  if (best < 0 || gain < SplitThreshold()) return;
  node->split_feature = node->candidates.feature(best);
  node->split_value = node->candidates.value(best);
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  node->ResetStats();
  ++splits_performed_;
  RecordEvent({.kind = StructuralEvent::Kind::kSplit,
               .time_step = time_step_,
               .feature = node->split_feature,
               .value = node->split_value,
               .gain = gain,
               .threshold = SplitThreshold(),
               .depth = depth});
}

namespace {

template <typename NodeT>
void SubtreeLeafLossR(const NodeT* node, double* loss, std::size_t* leaves) {
  if (node->is_leaf()) {
    *loss += node->loss_sum;
    ++*leaves;
    return;
  }
  SubtreeLeafLossR(node->left.get(), loss, leaves);
  SubtreeLeafLossR(node->right.get(), loss, leaves);
}

}  // namespace

void DmtRegressor::CheckInnerReplacement(Node* node, std::size_t depth) {
  double leaf_loss = 0.0;
  std::size_t leaves = 0;
  SubtreeLeafLossR(node, &leaf_loss, &leaves);

  double replace_gain = 0.0;
  const int best = BestCandidateOf(*node, leaf_loss, &replace_gain);
  const bool candidate_is_current =
      best >= 0 && node->candidates.feature(best) == node->split_feature &&
      node->candidates.value(best) == node->split_value;
  const bool replace_ok = best >= 0 && !candidate_is_current &&
                          replace_gain >= ReplaceThreshold(leaves);
  const double prune_gain = leaf_loss - node->loss_sum;
  const bool prune_ok = prune_gain >= PruneThreshold(leaves);
  if (!replace_ok && !prune_ok) return;

  if (prune_ok && (!replace_ok || prune_gain >= replace_gain)) {
    node->split_feature = -1;
    node->left.reset();
    node->right.reset();
    ++prunes_;
    RecordEvent({.kind = StructuralEvent::Kind::kPruneToLeaf,
                 .time_step = time_step_,
                 .feature = -1,
                 .value = 0.0,
                 .gain = prune_gain,
                 .threshold = PruneThreshold(leaves),
                 .depth = depth});
    return;
  }
  node->split_feature = node->candidates.feature(best);
  node->split_value = node->candidates.value(best);
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  node->ResetStats();
  ++replacements_;
  RecordEvent({.kind = StructuralEvent::Kind::kReplaceSplit,
               .time_step = time_step_,
               .feature = node->split_feature,
               .value = node->split_value,
               .gain = replace_gain,
               .threshold = ReplaceThreshold(leaves),
               .depth = depth});
}

void DmtRegressor::RecordEvent(StructuralEvent event) {
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin(), events_.begin() + kMaxEvents / 2);
  }
  events_.push_back(event);
}

double DmtRegressor::Predict(std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  // De-standardize back to the original target units.
  const double std = std::max(target_stats_.stddev(), 1e-9);
  return node->model.Predict(x) * std + target_stats_.mean();
}

std::vector<double> DmtRegressor::LeafFeatureWeights(
    std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->model.FeatureWeights();
}

std::size_t DmtRegressor::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t DmtRegressor::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t DmtRegressor::Depth() const {
  auto walk = [&](auto&& self, const Node* node) -> std::size_t {
    if (node->is_leaf()) return 0;
    return 1 + std::max(self(self, node->left.get()),
                        self(self, node->right.get()));
  };
  return walk(walk, root_.get());
}

std::size_t DmtRegressor::NumSplits() const {
  // Regression model leaves add one split each (cf. binary classification).
  return NumInnerNodes() + NumLeaves();
}

std::size_t DmtRegressor::NumParameters() const {
  return NumInnerNodes() +
         NumLeaves() * static_cast<std::size_t>(config_.num_features);
}

void DmtRegressor::Save(std::ostream& out) const {
  serial::Writer writer(out);
  writer.Header(serial::kTagDmtRegressor);
  writer.I32(config_.num_features);
  writer.F64(config_.learning_rate);
  writer.F64(config_.gradient_step_size);
  writer.F64(config_.epsilon);
  writer.Size(config_.max_candidates);
  writer.F64(config_.replacement_rate);
  writer.Size(config_.max_proposals_per_feature);
  writer.Size(config_.gain_test_every);
  writer.F64(config_.gain_test_threshold);
  // v3 fields: training hot-path knobs (version-gated on load).
  writer.Size(config_.order_buckets);
  writer.Bool(config_.candidate_grad_f32);
  writer.U64(config_.seed);
  writer.Size(target_stats_.count());
  writer.F64(target_stats_.mean());
  writer.F64(target_stats_.m2());
  writer.Size(time_step_);
  writer.Size(splits_performed_);
  writer.Size(replacements_);
  writer.Size(prunes_);

  auto save_node = [&](auto&& self, const Node* node) -> void {
    writer.I32(node->split_feature);
    writer.F64(node->split_value);
    writer.F64(node->loss_sum);
    writer.F64(node->count);
    writer.F64(node->samples_since_test);
    writer.F64(node->loss_since_test);
    node->model.SaveState(writer);
    writer.VecF64(node->grad_sum);
    node->candidates.Save(writer);
    if (!node->is_leaf()) {
      self(self, node->left.get());
      self(self, node->right.get());
    }
  };
  save_node(save_node, root_.get());
  // Engine last: MakeLeaf draws initial weights during Load.
  writer.Engine(rng_.engine());
}

std::unique_ptr<DmtRegressor> DmtRegressor::Load(std::istream& in) {
  serial::Reader reader(in);
  reader.Header(serial::kTagDmtRegressor);
  DmtRegressorConfig config;
  config.num_features = static_cast<int>(serial::CheckedRange(
      reader.I32(), 1, serial::kMaxFeatures, "DMT-R feature count"));
  config.learning_rate =
      serial::CheckedFinite(reader.F64(), "DMT-R learning rate");
  config.gradient_step_size =
      serial::CheckedFinite(reader.F64(), "DMT-R gradient step size");
  config.epsilon = reader.F64();
  // The constructor DMT_CHECKs this range; a hostile archive must throw.
  serial::Check(std::isfinite(config.epsilon) && config.epsilon > 0.0 &&
                    config.epsilon <= 1.0,
                "DMT-R epsilon out of range");
  config.max_candidates = reader.Size(std::size_t{1} << 62);
  config.replacement_rate = reader.F64();
  serial::Check(std::isfinite(config.replacement_rate) &&
                    config.replacement_rate >= 0.0 &&
                    config.replacement_rate <= 1.0,
                "DMT-R replacement rate out of range");
  config.max_proposals_per_feature = reader.Size(std::size_t{1} << 62);
  config.gain_test_every = reader.Size(std::size_t{1} << 62);
  serial::Check(config.gain_test_every >= 1,
                "DMT-R gain test period out of range");
  config.gain_test_threshold =
      serial::CheckedFinite(reader.F64(), "DMT-R gain test threshold");
  serial::Check(config.gain_test_threshold >= 0.0,
                "DMT-R gain test threshold out of range");
  if (reader.version() >= 3) {
    config.order_buckets = reader.Size(std::size_t{1} << 20);
    config.candidate_grad_f32 = reader.Bool();
  } else {
    // v2 archives predate the hot-path knobs: keep the exact-sort, f64
    // behavior of the build that wrote them.
    config.order_buckets = 0;
    config.candidate_grad_f32 = false;
  }
  config.seed = reader.U64();
  auto tree = std::make_unique<DmtRegressor>(config);
  const std::size_t stats_n = reader.Size(std::size_t{1} << 62);
  const double stats_mean = reader.F64();
  const double stats_m2 = reader.F64();
  tree->target_stats_.Restore(stats_n, stats_mean, stats_m2);
  tree->time_step_ = reader.Size(std::size_t{1} << 62);
  tree->splits_performed_ = reader.Size(std::size_t{1} << 62);
  tree->replacements_ = reader.Size(std::size_t{1} << 62);
  tree->prunes_ = reader.Size(std::size_t{1} << 62);

  auto load_node = [&](auto&& self,
                       std::size_t depth) -> std::unique_ptr<Node> {
    serial::Check(depth <= serial::kMaxTreeDepth,
                  "DMT-R node depth exceeds the archive limit");
    std::unique_ptr<Node> node = tree->MakeLeaf(nullptr);
    const std::int32_t split_feature = reader.I32();
    serial::Check(
        split_feature >= -1 && split_feature < config.num_features,
        "DMT-R split feature out of range");
    node->split_feature = static_cast<int>(split_feature);
    node->split_value = reader.F64();
    node->loss_sum = reader.F64();
    node->count = reader.F64();
    node->samples_since_test = reader.F64();
    node->loss_since_test = reader.F64();
    node->model.LoadState(reader);
    node->grad_sum = reader.VecF64Exact(
        static_cast<std::size_t>(node->model.num_params()));
    node->candidates.Load(reader);
    if (!node->is_leaf()) {
      node->left = self(self, depth + 1);
      node->right = self(self, depth + 1);
    }
    return node;
  };
  tree->root_ = load_node(load_node, 0);
  // Engine last: the MakeLeaf calls above consumed construction-time draws.
  reader.Engine(&tree->rng_.engine());
  return tree;
}

}  // namespace dmt::core
