#include "dmt/core/dmt_regressor.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dmt/common/check.h"
#include "dmt/common/math.h"

namespace dmt::core {

struct DmtRegressor::Node {
  int split_feature = -1;  // < 0 marks a leaf
  double split_value = 0.0;
  std::unique_ptr<Node> left;
  std::unique_ptr<Node> right;

  linear::LinearRegressor model;
  double loss_sum = 0.0;
  std::vector<double> grad_sum;
  double count = 0.0;
  std::vector<CandidateStats> candidates;

  Node(const linear::LinearRegressorConfig& model_config, Rng* rng)
      : model(model_config, rng), grad_sum(model.num_params(), 0.0) {}

  bool is_leaf() const { return split_feature < 0; }

  void ResetStats() {
    loss_sum = 0.0;
    std::fill(grad_sum.begin(), grad_sum.end(), 0.0);
    count = 0.0;
    candidates.clear();
  }
};

DmtRegressor::DmtRegressor(const DmtRegressorConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK(config.num_features >= 1);
  DMT_CHECK(config.epsilon > 0.0 && config.epsilon <= 1.0);
  if (config_.max_candidates == 0) {
    config_.max_candidates =
        3 * static_cast<std::size_t>(config.num_features);
  }
  root_ = MakeLeaf(nullptr);
  model_params_ = root_->model.num_params();
}

DmtRegressor::~DmtRegressor() = default;

std::unique_ptr<DmtRegressor::Node> DmtRegressor::MakeLeaf(
    const linear::LinearRegressor* warm_start) {
  linear::LinearRegressorConfig model_config;
  model_config.num_features = config_.num_features;
  model_config.learning_rate = config_.learning_rate;
  auto node = std::make_unique<Node>(model_config, &rng_);
  if (warm_start != nullptr) node->model.WarmStartFrom(*warm_start);
  return node;
}

double DmtRegressor::SplitThreshold() const {
  return static_cast<double>(model_params_) - std::log(config_.epsilon);
}

double DmtRegressor::ReplaceThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (2.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

double DmtRegressor::PruneThreshold(std::size_t subtree_leaves) const {
  const double param_delta = (1.0 - static_cast<double>(subtree_leaves)) *
                             static_cast<double>(model_params_);
  return std::max(param_delta, 0.0) - std::log(config_.epsilon);
}

double DmtRegressor::CandidateGain(const Node& node,
                                   const CandidateStats& candidate,
                                   double reference_loss) const {
  if (candidate.count <= 0.0 || candidate.count >= node.count) {
    return -std::numeric_limits<double>::infinity();
  }
  const double lambda = config_.gradient_step_size;
  const double left = ApproxCandidateLoss(candidate.loss, candidate.grad,
                                          candidate.count, lambda);
  const double right = ApproxComplementLoss(node.loss_sum, node.grad_sum,
                                            node.count, candidate, lambda);
  return reference_loss - left - right;
}

const CandidateStats* DmtRegressor::BestCandidate(const Node& node,
                                                  double reference_loss,
                                                  double* best_gain) const {
  const CandidateStats* best = nullptr;
  *best_gain = -std::numeric_limits<double>::infinity();
  for (const CandidateStats& candidate : node.candidates) {
    const double gain = CandidateGain(node, candidate, reference_loss);
    if (gain > *best_gain) {
      *best_gain = gain;
      best = &candidate;
    }
  }
  return best;
}

void DmtRegressor::PartialFit(const linear::RegressionBatch& batch) {
  DMT_CHECK(static_cast<int>(batch.num_features()) == config_.num_features);
  ++time_step_;
  // Standardize targets with the running estimates (updated first, so the
  // very first batch already has a usable scale).
  for (std::size_t i = 0; i < batch.size(); ++i) {
    target_stats_.Add(batch.target(i));
  }
  const double mean = target_stats_.mean();
  const double std = std::max(target_stats_.stddev(), 1e-9);
  linear::RegressionBatch standardized(batch.num_features());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    standardized.Add(batch.row(i), (batch.target(i) - mean) / std);
  }
  std::vector<std::size_t> rows(standardized.size());
  for (std::size_t i = 0; i < standardized.size(); ++i) rows[i] = i;
  UpdateNode(root_.get(), standardized, std::move(rows), 0);
}

void DmtRegressor::UpdateNode(Node* node,
                              const linear::RegressionBatch& batch,
                              std::vector<std::size_t> rows,
                              std::size_t depth) {
  if (rows.empty()) return;
  if (!node->is_leaf()) {
    std::vector<std::size_t> left_rows;
    std::vector<std::size_t> right_rows;
    for (std::size_t r : rows) {
      if (batch.row(r)[node->split_feature] <= node->split_value) {
        left_rows.push_back(r);
      } else {
        right_rows.push_back(r);
      }
    }
    UpdateNode(node->left.get(), batch, std::move(left_rows), depth + 1);
    UpdateNode(node->right.get(), batch, std::move(right_rows), depth + 1);
  }
  UpdateStatistics(node, batch, rows);
  if (node->is_leaf()) {
    CheckLeafSplit(node, depth);
  } else {
    CheckInnerReplacement(node, depth);
  }
}

void DmtRegressor::UpdateStatistics(Node* node,
                                    const linear::RegressionBatch& batch,
                                    const std::vector<std::size_t>& rows) {
  node->model.FitRows(batch, rows);

  const std::size_t n = rows.size();
  const std::size_t k = static_cast<std::size_t>(model_params_);
  std::vector<double> sample_loss(n);
  std::vector<double> sample_grad(n * k);
  double batch_loss = 0.0;
  std::vector<double> batch_grad(k, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    std::span<double> g(sample_grad.data() + i * k, k);
    sample_loss[i] = node->model.LossAndGradientOne(
        batch.row(rows[i]), batch.target(rows[i]), g);
    batch_loss += sample_loss[i];
    AddInPlace(batch_grad, g);
  }
  node->loss_sum += batch_loss;
  AddInPlace(node->grad_sum, batch_grad);
  node->count += static_cast<double>(n);

  struct Proposal {
    int feature;
    double value;
    double est_gain;
    double loss;
    std::vector<double> grad;
    double count;
  };
  std::vector<Proposal> proposals;
  std::vector<std::size_t> order(n);
  std::vector<double> prefix_grad(k);
  for (int j = 0; j < config_.num_features; ++j) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return batch.row(rows[a])[j] < batch.row(rows[b])[j];
    });
    std::vector<CandidateStats*> stored;
    for (CandidateStats& c : node->candidates) {
      if (c.feature == j) stored.push_back(&c);
    }
    std::sort(stored.begin(), stored.end(),
              [](const CandidateStats* a, const CandidateStats* b) {
                return a->value < b->value;
              });

    std::size_t proposal_stride = 1;
    if (config_.max_proposals_per_feature > 0 &&
        n > config_.max_proposals_per_feature) {
      proposal_stride = n / config_.max_proposals_per_feature;
    }

    double run_loss = 0.0;
    std::fill(prefix_grad.begin(), prefix_grad.end(), 0.0);
    double run_count = 0.0;
    std::size_t stored_pos = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t row = rows[order[i]];
      const double value = batch.row(row)[j];
      while (stored_pos < stored.size() &&
             stored[stored_pos]->value < value) {
        CandidateStats* c = stored[stored_pos];
        c->loss += run_loss;
        AddInPlace(c->grad, prefix_grad);
        c->count += run_count;
        ++stored_pos;
      }
      run_loss += sample_loss[order[i]];
      AddInPlace(prefix_grad, {sample_grad.data() + order[i] * k, k});
      run_count += 1.0;

      const bool boundary =
          i + 1 == n || batch.row(rows[order[i + 1]])[j] > value;
      if (!boundary || i + 1 == n) continue;
      if ((i + 1) % proposal_stride != 0) continue;

      CandidateStats tentative(j, value, k);
      tentative.loss = run_loss;
      tentative.grad.assign(prefix_grad.begin(), prefix_grad.end());
      tentative.count = run_count;
      const double lambda = config_.gradient_step_size;
      const double left_hat = ApproxCandidateLoss(run_loss, tentative.grad,
                                                  run_count, lambda);
      double right_norm_sq = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        const double g = batch_grad[p] - prefix_grad[p];
        right_norm_sq += g * g;
      }
      const double right_count = static_cast<double>(n) - run_count;
      const double right_hat =
          (batch_loss - run_loss) -
          (right_count > 0.0 ? lambda / right_count * right_norm_sq : 0.0);
      proposals.push_back({j, value, batch_loss - left_hat - right_hat,
                           run_loss, std::move(tentative.grad), run_count});
    }
    while (stored_pos < stored.size()) {
      CandidateStats* c = stored[stored_pos];
      c->loss += batch_loss;
      AddInPlace(c->grad, batch_grad);
      c->count += static_cast<double>(n);
      ++stored_pos;
    }
  }

  std::sort(proposals.begin(), proposals.end(),
            [](const Proposal& a, const Proposal& b) {
              return a.est_gain > b.est_gain;
            });
  std::size_t budget = static_cast<std::size_t>(
      config_.replacement_rate *
      static_cast<double>(config_.max_candidates));
  std::vector<double> stored_gain(node->candidates.size());
  for (std::size_t c = 0; c < node->candidates.size(); ++c) {
    stored_gain[c] =
        CandidateGain(*node, node->candidates[c], node->loss_sum);
  }
  for (Proposal& p : proposals) {
    const bool exists =
        std::any_of(node->candidates.begin(), node->candidates.end(),
                    [&](const CandidateStats& c) {
                      return c.feature == p.feature && c.value == p.value;
                    });
    if (exists) continue;
    CandidateStats fresh(p.feature, p.value, k);
    fresh.loss = p.loss;
    fresh.grad = std::move(p.grad);
    fresh.count = p.count;
    if (node->candidates.size() < config_.max_candidates) {
      node->candidates.push_back(std::move(fresh));
      stored_gain.push_back(
          CandidateGain(*node, node->candidates.back(), node->loss_sum));
      continue;
    }
    if (budget == 0) break;
    const std::size_t worst = static_cast<std::size_t>(
        std::min_element(stored_gain.begin(), stored_gain.end()) -
        stored_gain.begin());
    if (p.est_gain > stored_gain[worst]) {
      node->candidates[worst] = std::move(fresh);
      stored_gain[worst] =
          CandidateGain(*node, node->candidates[worst], node->loss_sum);
      --budget;
    }
  }
}

void DmtRegressor::CheckLeafSplit(Node* node, std::size_t depth) {
  double gain = 0.0;
  const CandidateStats* best = BestCandidate(*node, node->loss_sum, &gain);
  if (best == nullptr || gain < SplitThreshold()) return;
  node->split_feature = best->feature;
  node->split_value = best->value;
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  node->ResetStats();
  ++splits_performed_;
  RecordEvent({.kind = StructuralEvent::Kind::kSplit,
               .time_step = time_step_,
               .feature = node->split_feature,
               .value = node->split_value,
               .gain = gain,
               .threshold = SplitThreshold(),
               .depth = depth});
}

namespace {

template <typename NodeT>
void SubtreeLeafLossR(const NodeT* node, double* loss, std::size_t* leaves) {
  if (node->is_leaf()) {
    *loss += node->loss_sum;
    ++*leaves;
    return;
  }
  SubtreeLeafLossR(node->left.get(), loss, leaves);
  SubtreeLeafLossR(node->right.get(), loss, leaves);
}

}  // namespace

void DmtRegressor::CheckInnerReplacement(Node* node, std::size_t depth) {
  double leaf_loss = 0.0;
  std::size_t leaves = 0;
  SubtreeLeafLossR(node, &leaf_loss, &leaves);

  double replace_gain = 0.0;
  const CandidateStats* best = BestCandidate(*node, leaf_loss, &replace_gain);
  const bool candidate_is_current =
      best != nullptr && best->feature == node->split_feature &&
      best->value == node->split_value;
  const bool replace_ok = best != nullptr && !candidate_is_current &&
                          replace_gain >= ReplaceThreshold(leaves);
  const double prune_gain = leaf_loss - node->loss_sum;
  const bool prune_ok = prune_gain >= PruneThreshold(leaves);
  if (!replace_ok && !prune_ok) return;

  if (prune_ok && (!replace_ok || prune_gain >= replace_gain)) {
    node->split_feature = -1;
    node->left.reset();
    node->right.reset();
    ++prunes_;
    RecordEvent({.kind = StructuralEvent::Kind::kPruneToLeaf,
                 .time_step = time_step_,
                 .feature = -1,
                 .value = 0.0,
                 .gain = prune_gain,
                 .threshold = PruneThreshold(leaves),
                 .depth = depth});
    return;
  }
  node->split_feature = best->feature;
  node->split_value = best->value;
  node->left = MakeLeaf(&node->model);
  node->right = MakeLeaf(&node->model);
  node->ResetStats();
  ++replacements_;
  RecordEvent({.kind = StructuralEvent::Kind::kReplaceSplit,
               .time_step = time_step_,
               .feature = node->split_feature,
               .value = node->split_value,
               .gain = replace_gain,
               .threshold = ReplaceThreshold(leaves),
               .depth = depth});
}

void DmtRegressor::RecordEvent(StructuralEvent event) {
  if (events_.size() >= kMaxEvents) {
    events_.erase(events_.begin(), events_.begin() + kMaxEvents / 2);
  }
  events_.push_back(event);
}

double DmtRegressor::Predict(std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  // De-standardize back to the original target units.
  const double std = std::max(target_stats_.stddev(), 1e-9);
  return node->model.Predict(x) * std + target_stats_.mean();
}

std::vector<double> DmtRegressor::LeafFeatureWeights(
    std::span<const double> x) const {
  const Node* node = root_.get();
  while (!node->is_leaf()) {
    node = x[node->split_feature] <= node->split_value ? node->left.get()
                                                       : node->right.get();
  }
  return node->model.FeatureWeights();
}

std::size_t DmtRegressor::NumInnerNodes() const {
  std::size_t inner = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) return;
    ++inner;
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return inner;
}

std::size_t DmtRegressor::NumLeaves() const {
  std::size_t leaves = 0;
  auto walk = [&](auto&& self, const Node* node) -> void {
    if (node->is_leaf()) {
      ++leaves;
      return;
    }
    self(self, node->left.get());
    self(self, node->right.get());
  };
  walk(walk, root_.get());
  return leaves;
}

std::size_t DmtRegressor::Depth() const {
  auto walk = [&](auto&& self, const Node* node) -> std::size_t {
    if (node->is_leaf()) return 0;
    return 1 + std::max(self(self, node->left.get()),
                        self(self, node->right.get()));
  };
  return walk(walk, root_.get());
}

std::size_t DmtRegressor::NumSplits() const {
  // Regression model leaves add one split each (cf. binary classification).
  return NumInnerNodes() + NumLeaves();
}

std::size_t DmtRegressor::NumParameters() const {
  return NumInnerNodes() +
         NumLeaves() * static_cast<std::size_t>(config_.num_features);
}

}  // namespace dmt::core
