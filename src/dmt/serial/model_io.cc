#include "dmt/serial/model_io.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <sstream>

#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/ensemble/online_bagging.h"
#include "dmt/ensemble/online_boosting.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/sgt.h"
#include "dmt/trees/vfdt.h"

namespace dmt::serial {

std::unique_ptr<Classifier> LoadClassifier(std::istream& in) {
  Reader reader(in);
  const std::uint32_t tag = reader.Header();
  switch (tag) {
    case kTagDmtClassifier:
      return core::DynamicModelTree::LoadBody(reader);
    case kTagVfdt:
      return trees::Vfdt::LoadBody(reader);
    case kTagEfdt:
      return trees::Efdt::LoadBody(reader);
    case kTagHat:
      return trees::HoeffdingAdaptiveTree::LoadBody(reader);
    case kTagFimtDd:
      return trees::FimtDd::LoadBody(reader);
    case kTagSgt:
      return trees::SgtClassifier::LoadBody(reader);
    case kTagGlmClassifier:
      return linear::GlmClassifier::LoadBody(reader);
    case kTagArf:
      return ensemble::AdaptiveRandomForest::LoadBody(reader);
    case kTagLevBag:
      return ensemble::LeveragingBagging::LoadBody(reader);
    case kTagOzaBag:
      return ensemble::OnlineBagging::LoadBody(reader);
    case kTagOzaBoost:
      return ensemble::OnlineBoosting::LoadBody(reader);
    default:
      throw SerialError("archive tag does not name a classifier");
  }
}

std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerialError("cannot open model archive: " + path);
  return LoadClassifier(in);
}

std::unique_ptr<trees::Vfdt> LoadMemberVfdt(Reader& reader, int num_features,
                                            int num_classes) {
  std::unique_ptr<trees::Vfdt> tree = trees::Vfdt::LoadBody(reader);
  Check(tree->config().num_features == num_features &&
            tree->config().num_classes == num_classes,
        "ensemble member tree dimensions disagree with the ensemble");
  return tree;
}

std::string SaveClassifierToString(const Classifier& model) {
  std::ostringstream out(std::ios::binary);
  model.Save(out);
  if (!out) throw SerialError("in-memory model archive encode failed");
  return out.str();
}

std::unique_ptr<Classifier> LoadClassifierFromString(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return LoadClassifier(in);
}

void SaveClassifierToFile(const Classifier& model, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw SerialError("cannot write model archive: " + tmp);
    model.Save(out);
    out.flush();
    if (!out) throw SerialError("model archive write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SerialError("cannot publish model archive: " + path);
  }
}

}  // namespace dmt::serial
