#include "dmt/serial/archive.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

namespace dmt::serial {

void Writer::WriteExact(const void* src, std::size_t n) {
  out_.write(static_cast<const char*>(src), static_cast<std::streamsize>(n));
  if (!out_) throw SerialError("archive write failed");
}

void Writer::Header(std::uint32_t tag) {
  U32(kMagic);
  U32(kFormatVersion);
  U32(tag);
}

void Writer::U8(std::uint8_t v) { WriteExact(&v, 1); }

void Writer::U32(std::uint32_t v) {
  unsigned char buf[4];
  for (int i = 0; i < 4; ++i) {
    buf[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  WriteExact(buf, sizeof(buf));
}

void Writer::U64(std::uint64_t v) {
  unsigned char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<unsigned char>(v >> (8 * i));
  }
  WriteExact(buf, sizeof(buf));
}

void Writer::F64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit IEEE-754");
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::F32(float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v), "float must be 32-bit IEEE-754");
  std::memcpy(&bits, &v, sizeof(bits));
  U32(bits);
}

void Writer::Str(const std::string& s) {
  Size(s.size());
  if (!s.empty()) WriteExact(s.data(), s.size());
}

void Writer::VecF64(const std::vector<double>& v) {
  Size(v.size());
  for (double x : v) F64(x);
}

void Writer::VecU64(const std::vector<std::uint64_t>& v) {
  Size(v.size());
  for (std::uint64_t x : v) U64(x);
}

void Writer::Engine(const std::mt19937_64& engine) {
  std::ostringstream text;
  text << engine;
  Str(text.str());
}

void Reader::ReadExact(void* dst, std::size_t n) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in_.gcount()) != n) {
    throw SerialError("unexpected end of archive");
  }
}

std::uint32_t Reader::Header() {
  Check(U32() == kMagic, "bad magic: not a DMT model archive");
  const std::uint32_t version = U32();
  if (version < kMinReadVersion || version > kFormatVersion) {
    throw SerialError("unsupported archive format version " +
                      std::to_string(version) + " (this build reads versions " +
                      std::to_string(kMinReadVersion) + ".." +
                      std::to_string(kFormatVersion) + ")");
  }
  version_ = version;
  return U32();
}

void Reader::Header(std::uint32_t expected_tag) {
  Check(Header() == expected_tag, "archive holds a different learner type");
}

std::uint8_t Reader::U8() {
  std::uint8_t v;
  ReadExact(&v, 1);
  return v;
}

std::uint32_t Reader::U32() {
  unsigned char buf[4];
  ReadExact(buf, sizeof(buf));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::U64() {
  unsigned char buf[8];
  ReadExact(buf, sizeof(buf));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  }
  return v;
}

std::size_t Reader::Size(std::size_t max) {
  const std::uint64_t v = U64();
  if (v > max) {
    throw SerialError("archived count " + std::to_string(v) +
                      " exceeds the plausible bound " + std::to_string(max));
  }
  return static_cast<std::size_t>(v);
}

bool Reader::Bool() {
  const std::uint8_t v = U8();
  Check(v <= 1, "archived bool is neither 0 nor 1");
  return v == 1;
}

double Reader::F64() {
  const std::uint64_t bits = U64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

float Reader::F32() {
  const std::uint32_t bits = U32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Reader::Str(std::size_t max_len) {
  const std::size_t n = Size(max_len);
  std::string s(n, '\0');
  if (n > 0) ReadExact(&s[0], n);
  return s;
}

std::vector<double> Reader::VecF64(std::size_t max_len) {
  const std::size_t n = Size(max_len);
  std::vector<double> v;
  // Capped reserve: a lying length prefix exhausts the stream (and throws)
  // after at most one small allocation, instead of reserving gigabytes.
  v.reserve(std::min<std::size_t>(n, 4096));
  for (std::size_t i = 0; i < n; ++i) v.push_back(F64());
  return v;
}

std::vector<double> Reader::VecF64Exact(std::size_t n) {
  std::vector<double> v = VecF64(std::max<std::size_t>(n, kMaxVector));
  if (v.size() != n) {
    throw SerialError("archived vector length " + std::to_string(v.size()) +
                      " does not match the expected " + std::to_string(n));
  }
  return v;
}

std::vector<std::uint64_t> Reader::VecU64(std::size_t max_len) {
  const std::size_t n = Size(max_len);
  std::vector<std::uint64_t> v;
  v.reserve(std::min<std::size_t>(n, 4096));
  for (std::size_t i = 0; i < n; ++i) v.push_back(U64());
  return v;
}

void Reader::Engine(std::mt19937_64* engine) {
  // ~6.5 KB of decimal digits for the 312-word state; 64 KB is generous.
  const std::string text = Str(std::size_t{1} << 16);
  std::istringstream parse(text);
  parse >> *engine;
  Check(!parse.fail(), "malformed RNG engine state");
}

}  // namespace dmt::serial
