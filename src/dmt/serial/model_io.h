// Learner tags and whole-model archive entry points. Every learner writes
// the shared header (serial/archive.h) with its own FourCC tag; the
// functions here read that header once and dispatch to the right Load.
#ifndef DMT_SERIAL_MODEL_IO_H_
#define DMT_SERIAL_MODEL_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "dmt/common/classifier.h"
#include "dmt/serial/archive.h"

namespace dmt::trees {
class Vfdt;
}  // namespace dmt::trees

namespace dmt::serial {

// Learner tags. Append-only: a value is never reused or renumbered, so an
// old archive always names its learner unambiguously.
inline constexpr std::uint32_t kTagDmtClassifier = FourCC('D', 'M', 'T', 'C');
inline constexpr std::uint32_t kTagDmtRegressor = FourCC('D', 'M', 'T', 'R');
inline constexpr std::uint32_t kTagVfdt = FourCC('V', 'F', 'D', 'T');
inline constexpr std::uint32_t kTagEfdt = FourCC('E', 'F', 'D', 'T');
inline constexpr std::uint32_t kTagHat = FourCC('H', 'A', 'T', 'T');
inline constexpr std::uint32_t kTagFimtDd = FourCC('F', 'I', 'M', 'T');
inline constexpr std::uint32_t kTagFimtDdRegressor =
    FourCC('F', 'I', 'M', 'R');
inline constexpr std::uint32_t kTagSgt = FourCC('S', 'G', 'T', 'C');
inline constexpr std::uint32_t kTagGlmClassifier = FourCC('G', 'L', 'M', 'C');
inline constexpr std::uint32_t kTagGlm = FourCC('G', 'L', 'M', 'M');
inline constexpr std::uint32_t kTagLinearRegressor =
    FourCC('L', 'I', 'N', 'R');
inline constexpr std::uint32_t kTagGaussianNb = FourCC('G', 'S', 'N', 'B');
inline constexpr std::uint32_t kTagArf = FourCC('A', 'R', 'F', 'E');
inline constexpr std::uint32_t kTagLevBag = FourCC('L', 'V', 'B', 'G');
inline constexpr std::uint32_t kTagOzaBag = FourCC('O', 'Z', 'B', 'G');
inline constexpr std::uint32_t kTagOzaBoost = FourCC('O', 'Z', 'B', 'S');

// Reads one archive and reconstructs whichever Classifier it holds.
// Throws SerialError on malformed input or a non-classifier tag.
std::unique_ptr<Classifier> LoadClassifier(std::istream& in);
std::unique_ptr<Classifier> LoadClassifierFromFile(const std::string& path);

// Atomic publish, sweep-manifest style: the archive is written to
// `path + ".tmp"` and renamed over `path`, so readers never observe a torn
// snapshot. Throws SerialError if the file cannot be written.
void SaveClassifierToFile(const Classifier& model, const std::string& path);

// In-memory round trip, for embedding archives inside larger container
// formats (the serve layer's checkpoint manifests, replication payloads):
// the returned bytes are exactly what SaveClassifierToFile publishes, and
// LoadClassifierFromString accepts exactly what LoadClassifierFromFile
// reads. Throws SerialError on encode failure / malformed bytes.
std::string SaveClassifierToString(const Classifier& model);
std::unique_ptr<Classifier> LoadClassifierFromString(const std::string& bytes);

// Reads one embedded VFDT body record for an ensemble member and checks it
// matches the ensemble dimensions: ensemble scoring shares per-class
// scratch rows across members, so a member tree with foreign dimensions
// would index out of bounds. Throws SerialError on mismatch.
std::unique_ptr<trees::Vfdt> LoadMemberVfdt(Reader& reader, int num_features,
                                            int num_classes);

}  // namespace dmt::serial

#endif  // DMT_SERIAL_MODEL_IO_H_
