// Versioned binary model archives. One format for every learner: a fixed
// header (magic + format version + learner FourCC tag) followed by a
// learner-specific record of little-endian fixed-width integers, raw
// IEEE-754 doubles and length-prefixed vectors/strings. The encoding is
// deterministic -- the same model state always produces the same bytes --
// which is what lets the conformance suite compare snapshots with memcmp.
//
// Decoding is hostile-input safe: every read is bounds-checked and every
// malformed field (bad magic, wrong version, wrong tag, truncated stream,
// out-of-range count, non-finite dimension) raises SerialError. Load never
// aborts, never invokes UB, and never allocates proportionally to an
// attacker-chosen length before the stream has actually produced the bytes.
#ifndef DMT_SERIAL_ARCHIVE_H_
#define DMT_SERIAL_ARCHIVE_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace dmt::serial {

// Thrown on any malformed archive. The only failure mode of Load.
class SerialError : public std::runtime_error {
 public:
  explicit SerialError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::uint32_t FourCC(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

inline constexpr std::uint32_t kMagic = FourCC('D', 'M', 'T', 'S');
// Version history: 1 = initial format; 2 = dirty-node gain scheduler
// (per-tree gain_test_every/gain_test_threshold knobs, per-node
// samples_since_test/loss_since_test accumulators); 3 = training hot-path
// knobs (per-tree order_buckets/candidate_grad_f32) and typed candidate
// gradients (F32 rows when the store runs in float32 mode).
inline constexpr std::uint32_t kFormatVersion = 3;
// Oldest archive version this build still reads. v2 archives decode with
// the hot-path knobs defaulted off (exact order statistics, f64 candidate
// gradients), so a restored model continues training exactly as the build
// that wrote it.
inline constexpr std::uint32_t kMinReadVersion = 2;

// Shared sanity caps for decoded dimensions. Legitimate models sit far
// below these; a fuzzer-supplied count above them fails fast instead of
// attempting a multi-gigabyte allocation.
inline constexpr std::int64_t kMaxFeatures = 1 << 20;
inline constexpr std::int64_t kMaxClasses = 1 << 16;
inline constexpr std::size_t kMaxVector = std::size_t{1} << 24;
inline constexpr std::size_t kMaxTreeDepth = 10'000;

inline void Check(bool ok, const char* what) {
  if (!ok) throw SerialError(what);
}

// Range-validated pass-through for decoded counts and enum values.
inline std::int64_t CheckedRange(std::int64_t v, std::int64_t lo,
                                 std::int64_t hi, const char* what) {
  if (v < lo || v > hi) {
    throw SerialError(std::string(what) + " out of range: " +
                      std::to_string(v));
  }
  return v;
}

inline double CheckedFinite(double v, const char* what) {
  if (!std::isfinite(v)) {
    throw SerialError(std::string(what) + " is not finite");
  }
  return v;
}

// Little-endian binary writer. Throws SerialError if the underlying stream
// rejects a write (disk full, closed pipe), so a torn save never goes
// unnoticed.
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void Header(std::uint32_t tag);
  void U8(std::uint8_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Size(std::size_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v);  // raw IEEE-754 bit pattern
  void F32(float v);   // raw IEEE-754 bit pattern (f32 candidate gradients)
  void Str(const std::string& s);
  void VecF64(const std::vector<double>& v);
  void VecU64(const std::vector<std::uint64_t>& v);
  // std::mt19937_64 state via its textual representation (the only
  // portable exact round-trip the standard guarantees).
  void Engine(const std::mt19937_64& engine);

 private:
  void WriteExact(const void* src, std::size_t n);
  std::ostream& out_;
};

// Checked little-endian binary reader; every method throws SerialError on
// truncation or an out-of-range value.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  // Validates magic + version and returns the learner tag. Accepts any
  // version in [kMinReadVersion, kFormatVersion]; the decoded version is
  // exposed via version() so records can gate fields added in later
  // versions.
  std::uint32_t Header();
  // Validates magic + version + this exact learner tag.
  void Header(std::uint32_t expected_tag);
  // Archive format version decoded by Header() (kFormatVersion before any
  // Header call).
  std::uint32_t version() const { return version_; }
  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int32_t I32() { return static_cast<std::int32_t>(U32()); }
  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }
  // Count with an explicit upper bound -- container reads must state how
  // large is plausible.
  std::size_t Size(std::size_t max);
  bool Bool();  // strict: only 0 or 1 decode
  double F64();
  float F32();
  std::string Str(std::size_t max_len);
  std::vector<double> VecF64(std::size_t max_len = kMaxVector);
  // Like VecF64 but the archived length must equal `n` exactly.
  std::vector<double> VecF64Exact(std::size_t n);
  std::vector<std::uint64_t> VecU64(std::size_t max_len = kMaxVector);
  void Engine(std::mt19937_64* engine);

 private:
  void ReadExact(void* dst, std::size_t n);
  std::istream& in_;
  std::uint32_t version_ = kFormatVersion;
};

}  // namespace dmt::serial

#endif  // DMT_SERIAL_ARCHIVE_H_
