#include "dmt/robust/faulty_stream.h"

#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "dmt/common/check.h"

namespace dmt::robust {

FaultSpec FaultSpec::Parse(const std::string& spec) {
  FaultSpec result;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("malformed fault entry '" +
                                  std::string(entry) + "' (want kind=rate)");
    }
    const std::string key(entry.substr(0, eq));
    const std::string value(entry.substr(eq + 1));
    char* end = nullptr;
    const double rate = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      throw std::invalid_argument("unparsable fault rate '" + value +
                                  "' for '" + key + "'");
    }
    if (!(rate >= 0.0 && rate <= 1.0)) {
      throw std::invalid_argument("fault rate out of [0,1] for '" + key + "'");
    }
    if (key == "nan") {
      result.nan_rate = rate;
    } else if (key == "inf") {
      result.inf_rate = rate;
    } else if (key == "missing") {
      result.missing_rate = rate;
    } else if (key == "flip") {
      result.flip_rate = rate;
    } else if (key == "truncate") {
      result.truncate_rate = rate;
    } else {
      throw std::invalid_argument(
          "unknown fault kind '" + key +
          "' (known: nan, inf, missing, flip, truncate)");
    }
  }
  return result;
}

bool FaultyStream::NextInstance(Instance* out) {
  if (truncated_) return false;
  if (spec_.truncate_rate > 0.0 && rng_.Bernoulli(spec_.truncate_rate)) {
    truncated_ = true;
    ++counts_.truncated;
    return false;
  }
  if (!inner_->NextInstance(out)) return false;
  const int num_features = static_cast<int>(out->x.size());
  if (spec_.nan_rate > 0.0 && num_features > 0 &&
      rng_.Bernoulli(spec_.nan_rate)) {
    out->x[rng_.UniformInt(0, num_features - 1)] =
        std::numeric_limits<double>::quiet_NaN();
    ++counts_.nan;
  }
  if (spec_.inf_rate > 0.0 && num_features > 0 &&
      rng_.Bernoulli(spec_.inf_rate)) {
    const double sign = rng_.Bernoulli(0.5) ? 1.0 : -1.0;
    out->x[rng_.UniformInt(0, num_features - 1)] =
        sign * std::numeric_limits<double>::infinity();
    ++counts_.inf;
  }
  if (spec_.missing_rate > 0.0) {
    for (double& value : out->x) {
      if (rng_.Bernoulli(spec_.missing_rate)) {
        value = std::numeric_limits<double>::quiet_NaN();
        ++counts_.missing;
      }
    }
  }
  const int num_classes = static_cast<int>(inner_->num_classes());
  if (spec_.flip_rate > 0.0 && num_classes > 1 &&
      rng_.Bernoulli(spec_.flip_rate)) {
    // Uniform over the other classes: draw r in [0, c-2], shift past y.
    int r = rng_.UniformInt(0, num_classes - 2);
    if (r >= out->y) ++r;
    DMT_DCHECK(r != out->y && r >= 0 && r < num_classes);
    out->y = r;
    ++counts_.flips;
  }
  return true;
}

}  // namespace dmt::robust
