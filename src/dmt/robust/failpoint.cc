#include "dmt/robust/failpoint.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace dmt::robust {

Failpoint* FailpointRegistry::Arm(const std::string& name, double probability,
                                  std::uint64_t base_seed) {
  if (name.empty()) {
    throw std::invalid_argument("failpoint name must be non-empty");
  }
  if (!(probability >= 0.0 && probability <= 1.0)) {
    throw std::invalid_argument("failpoint probability out of [0,1] for '" +
                                name + "'");
  }
  const std::uint64_t seed = DeriveSeed(base_seed, name);
  auto it = points_.find(name);
  if (it != points_.end()) points_.erase(it);
  auto [inserted, ok] = points_.emplace(name,
                                        Failpoint(name, probability, seed));
  return &inserted->second;
}

void FailpointRegistry::ArmFromSpec(const std::string& spec,
                                    std::uint64_t base_seed) {
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument("malformed failpoint entry '" +
                                  std::string(entry) +
                                  "' (want name=probability)");
    }
    const std::string name(entry.substr(0, eq));
    const std::string prob_text(entry.substr(eq + 1));
    char* end = nullptr;
    const double probability = std::strtod(prob_text.c_str(), &end);
    if (end == prob_text.c_str() || *end != '\0') {
      throw std::invalid_argument("unparsable failpoint probability '" +
                                  prob_text + "' for '" + name + "'");
    }
    Arm(name, probability, base_seed);
  }
}

Failpoint* FailpointRegistry::Find(const std::string& name) {
  auto it = points_.find(name);
  return it == points_.end() ? nullptr : &it->second;
}

FailpointRegistry& GlobalFailpoints() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

}  // namespace dmt::robust
