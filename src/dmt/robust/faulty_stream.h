// Stream decorator that injects data faults at configured rates
// (DESIGN.md Sec. 8). Wraps any streams::Stream and corrupts instances on
// the way out:
//
//   nan=R       with probability R per instance, one random feature -> NaN
//   inf=R       with probability R per instance, one random feature -> +/-Inf
//   missing=R   per feature, independently, value -> NaN (missing marker)
//   flip=R      per instance, label -> a uniformly random *different* class
//   truncate=R  per instance, the stream ends early (stays exhausted)
//
// All draws come from one Rng owned by the decorator, seeded explicitly by
// the caller (the harness uses DeriveSeed(cell_seed, "inject")), so a given
// (spec, seed) pair yields the identical fault trace at any --jobs value.
// The trace contract is per (full spec, seed): changing any one rate
// re-randomizes the whole trace, which is fine -- determinism, not
// rate-isolation, is the property the tests pin.
#ifndef DMT_ROBUST_FAULTY_STREAM_H_
#define DMT_ROBUST_FAULTY_STREAM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "dmt/common/random.h"
#include "dmt/streams/stream.h"

namespace dmt::robust {

// Per-kind fault rates, all in [0, 1]; 0 disables the kind.
struct FaultSpec {
  double nan_rate = 0.0;
  double inf_rate = 0.0;
  double missing_rate = 0.0;
  double flip_rate = 0.0;
  double truncate_rate = 0.0;

  bool any() const {
    return nan_rate > 0.0 || inf_rate > 0.0 || missing_rate > 0.0 ||
           flip_rate > 0.0 || truncate_rate > 0.0;
  }

  // Parses "nan=0.01,inf=0.001,missing=0.05,flip=0.02,truncate=1e-5".
  // Unlisted kinds stay 0. Throws std::invalid_argument on unknown keys,
  // unparsable values, or rates outside [0, 1].
  static FaultSpec Parse(const std::string& spec);
};

// Counts of injected faults, for telemetry flushing after a run.
struct FaultCounts {
  std::uint64_t nan = 0;
  std::uint64_t inf = 0;
  std::uint64_t missing = 0;
  std::uint64_t flips = 0;
  std::uint64_t truncated = 0;  // 0 or 1: a stream truncates at most once
};

class FaultyStream : public streams::Stream {
 public:
  FaultyStream(std::unique_ptr<streams::Stream> inner, const FaultSpec& spec,
               std::uint64_t seed)
      : inner_(std::move(inner)), spec_(spec), rng_(seed) {}

  bool NextInstance(Instance* out) override;

  std::size_t num_features() const override { return inner_->num_features(); }
  std::size_t num_classes() const override { return inner_->num_classes(); }
  std::string name() const override { return inner_->name(); }

  const FaultCounts& counts() const { return counts_; }

 private:
  std::unique_ptr<streams::Stream> inner_;
  FaultSpec spec_;
  Rng rng_;
  FaultCounts counts_;
  bool truncated_ = false;
};

}  // namespace dmt::robust

#endif  // DMT_ROBUST_FAULTY_STREAM_H_
