// Deterministic fault injection (DESIGN.md Sec. 8).
//
// A FailpointRegistry is a flat, named collection of failpoints: probes
// compiled into error-handling-critical code paths that fire -- throw a
// FaultInjectedError -- with a configured probability. Firing decisions are
// drawn from a per-failpoint Rng seeded with DeriveSeed(base_seed, name),
// never from wall clock or thread identity, so a given (spec, seed) pair
// produces the identical fault trace at any --jobs value, run after run.
//
// Ownership and threading model mirror obs/telemetry: the registry hands
// out *stable* pointers into node-based storage which call sites cache once
// (here: at arming time, via Find). An unarmed failpoint is a null pointer
// and the DMT_FAILPOINT macro reduces to one never-taken branch. The bench
// harness arms the process-global registry from --failpoints before any
// worker thread starts and never re-arms, so sweep workers touch disjoint
// Failpoint objects (one per cell name) without synchronization.
//
// Defining DMT_FAILPOINTS_DISABLED compiles the macro out entirely (the
// DMT_TELEMETRY_DISABLED pattern) for builds where even the dead branch
// must go.
#ifndef DMT_ROBUST_FAILPOINT_H_
#define DMT_ROBUST_FAILPOINT_H_

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "dmt/common/random.h"

namespace dmt::robust {

// Thrown by a firing failpoint. Distinct from data-dependent errors so
// tests can assert the failure came from injection, not a real bug.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

// One named fault site. `Evaluate()` decides (deterministically) whether
// this invocation fires; `hits`/`fires` are observability counters a test
// or the harness can read back after a run.
class Failpoint {
 public:
  Failpoint(std::string name, double probability, std::uint64_t seed)
      : name_(std::move(name)), probability_(probability), rng_(seed) {}

  // True when this invocation should fail. p >= 1 always fires (and skips
  // the RNG so "=1" traces stay stable if the draw implementation changes);
  // p <= 0 never fires but still counts the hit.
  bool Evaluate() {
    ++hits_;
    bool fire = false;
    if (probability_ >= 1.0) {
      fire = true;
    } else if (probability_ > 0.0) {
      fire = rng_.Bernoulli(probability_);
    }
    if (fire) ++fires_;
    return fire;
  }

  const std::string& name() const { return name_; }
  double probability() const { return probability_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t fires() const { return fires_; }

 private:
  std::string name_;
  double probability_;
  Rng rng_;
  std::uint64_t hits_ = 0;
  std::uint64_t fires_ = 0;
};

class FailpointRegistry {
 public:
  FailpointRegistry() = default;
  // Pointer stability contract: non-copyable, non-movable.
  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  // Arms one failpoint. Each failpoint draws from its own generator seeded
  // DeriveSeed(base_seed, name), so arming order does not matter and two
  // failpoints never share a random stream. Re-arming an existing name
  // resets its probability, seed and counters.
  Failpoint* Arm(const std::string& name, double probability,
                 std::uint64_t base_seed);

  // Arms from a comma-separated "name=prob,name=prob" spec, e.g.
  // "cell:SEA/GLM=1,glm.fit=0.01". Throws std::invalid_argument on a
  // malformed spec (empty name, unparsable or out-of-range probability).
  void ArmFromSpec(const std::string& spec, std::uint64_t base_seed);

  // Stable pointer to the named failpoint, or nullptr when unarmed.
  Failpoint* Find(const std::string& name);

  std::size_t num_armed() const { return points_.size(); }
  void Clear() { points_.clear(); }

 private:
  // Node-based storage: pointers stay valid across Arm() calls.
  std::map<std::string, Failpoint> points_;
};

// The process-global registry the bench binaries arm from --failpoints.
// Arm it before spawning workers; Evaluate() on distinct failpoints is
// then thread-safe because each worker touches only its own cell's entry.
FailpointRegistry& GlobalFailpoints();

}  // namespace dmt::robust

// Call-site probe: `fp` is a cached Failpoint* (null when unarmed).
// Throws FaultInjectedError when the failpoint decides to fire.
#ifdef DMT_FAILPOINTS_DISABLED
#define DMT_FAILPOINT(fp) \
  do {                    \
  } while (0)
#else
#define DMT_FAILPOINT(fp)                                             \
  do {                                                                \
    if ((fp) != nullptr && (fp)->Evaluate()) {                        \
      throw ::dmt::robust::FaultInjectedError("failpoint fired: " +   \
                                              (fp)->name());          \
    }                                                                 \
  } while (0)
#endif

#endif  // DMT_ROBUST_FAILPOINT_H_
