#include "sweep_manifest.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "dmt/common/random.h"

namespace dmt::bench {

namespace {

// Manifest records are one line each, comma-separated; the free-text error
// field is flattened so it can never break the format.
std::string FlattenError(const std::string& error) {
  std::string out;
  out.reserve(error.size());
  for (const char c : error) {
    out.push_back(c == ',' || c == '\n' || c == '\r' ? ';' : c);
  }
  return out;
}

}  // namespace

std::string SweepManifest::FileName(const ManifestKey& key) {
  // 0 is a fixed salt: the hash names a file, it never seeds an RNG. The
  // fault specs are part of the identity so faulted and clean sweeps keep
  // separate manifests.
  const std::uint64_t hash =
      DeriveSeed(0, key.inject_spec, key.failpoint_spec);
  std::ostringstream name;
  name << "manifests/sweep_s" << key.samples << "_r" << key.seed << "_h"
       << std::hex << (hash & 0xffffffffULL) << ".csv";
  return name.str();
}

SweepManifest::SweepManifest(std::string root, const ManifestKey& key)
    : root_(std::move(root)), path_(root_ + "/" + FileName(key)) {}

std::size_t SweepManifest::Load() {
  std::ifstream in(path_);
  if (!in) return 0;
  std::map<std::pair<std::string, std::string>, ManifestEntry> loaded;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::stringstream stream(line);
    std::string dataset, model, status, error;
    if (!std::getline(stream, dataset, ',')) continue;
    if (!std::getline(stream, model, ',')) continue;
    if (!std::getline(stream, status, ',')) continue;
    std::getline(stream, error);  // optional; rest of the line
    if (status != "ok" && status != "failed") continue;
    loaded[{dataset, model}] = {status == "failed", error};
  }
  std::lock_guard<std::mutex> lock(mutex_);
  entries_ = std::move(loaded);
  return entries_.size();
}

void SweepManifest::Record(const std::string& dataset,
                           const std::string& model,
                           const ManifestEntry& entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_[{dataset, model}] = {entry.failed, FlattenError(entry.error)};
  Publish();
}

std::optional<ManifestEntry> SweepManifest::Find(
    const std::string& dataset, const std::string& model) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find({dataset, model});
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::size_t SweepManifest::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SweepManifest::Publish() {
  // Caller holds mutex_. The whole manifest is rewritten each time -- it is
  // tiny (one line per cell) -- and published with an atomic rename, so a
  // SIGKILL at any instant leaves either the previous or the new complete
  // file on disk, never a torn one.
  const std::filesystem::path target(path_);
  std::error_code ec;
  std::filesystem::create_directories(target.parent_path(), ec);

  std::ostringstream temp_name;
  temp_name << path_ << ".tmp." << ::getpid() << "." << ++temp_counter_;
  {
    std::ofstream out(temp_name.str());
    if (!out) return;  // manifest is best-effort; the sweep itself goes on
    out << "dataset,model,status,error\n";
    for (const auto& [key, entry] : entries_) {
      out << key.first << ',' << key.second << ','
          << (entry.failed ? "failed" : "ok") << ',' << entry.error << '\n';
    }
  }
  std::filesystem::rename(temp_name.str(), target, ec);
  if (ec) std::filesystem::remove(temp_name.str(), ec);
}

}  // namespace dmt::bench
