// Minimal machine-readable result emission for the micro-benchmarks.
//
// Each micro-bench binary writes one JSON document (BENCH_train.json /
// BENCH_infer.json) next to its stdout table, so the perf trajectory of the
// hot paths can be tracked across commits by tooling (CI uploads the file
// as an artifact). The format is flat on purpose:
//
//   {
//     "bench": "train",
//     "samples": 50000,
//     "seed": 42,
//     "results": [
//       {"dataset": "SEA", "model": "DMT", "ns_per_sample": 512.3,
//        "allocs_per_sample": 0.0},
//       ...
//     ]
//   }
//
// No external JSON dependency: the writer only ever emits strings it
// controls (dataset/model names and finite doubles), so hand-rolled
// escaping-free serialization is sufficient.
#ifndef DMT_BENCH_BENCH_JSON_H_
#define DMT_BENCH_BENCH_JSON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace dmt::bench {

class JsonBenchWriter {
 public:
  JsonBenchWriter(std::string bench, std::size_t samples, std::uint64_t seed)
      : bench_(std::move(bench)), samples_(samples), seed_(seed) {}

  // One result row; metrics are (name, value) pairs appended verbatim.
  void AddResult(
      const std::string& dataset, const std::string& model,
      const std::vector<std::pair<std::string, double>>& metrics) {
    std::string row = "    {\"dataset\": \"" + dataset + "\", \"model\": \"" +
                      model + "\"";
    char buffer[64];
    for (const auto& [name, value] : metrics) {
      // JSON has no NaN/Inf literals; a non-finite metric (possible under
      // fault injection) becomes null instead of corrupting the document.
      if (!std::isfinite(value)) {
        std::snprintf(buffer, sizeof(buffer), "null");
      } else {
        std::snprintf(buffer, sizeof(buffer), "%.6g", value);
      }
      row += ", \"" + name + "\": " + buffer;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  // Writes the document to `path`; returns false (with a note on stderr) if
  // the file cannot be opened.
  bool WriteTo(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n  \"samples\": %zu,\n"
                 "  \"seed\": %llu,\n  \"results\": [\n",
                 bench_.c_str(), samples_,
                 static_cast<unsigned long long>(seed_));
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(out, "%s%s\n", rows_[i].c_str(),
                   i + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    return true;
  }

 private:
  std::string bench_;
  std::size_t samples_;
  std::uint64_t seed_;
  std::vector<std::string> rows_;
};

}  // namespace dmt::bench

#endif  // DMT_BENCH_BENCH_JSON_H_
