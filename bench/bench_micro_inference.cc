// Micro-benchmark of the batch-first scoring core: per-model ns/sample and
// heap allocations/sample in steady state, for both the single-row
// (PredictProbaInto) and the batch (PredictBatch) entry points.
//
// Models are trained on a normalized prefix of a synthetic stream first, so
// the trees carry realistic structure; scoring then loops over one resident
// probe batch. Allocations are counted with the thread-local counting
// allocator (alloc_count.h) -- the headline claim is 0.000 allocs/sample
// for every model once the scratch buffers are warm.
//
// Flags (see harness.h): --samples N (training prefix per model, default
// 50000), --models a,b, --datasets d (first selected dataset is used,
// default SEA), --seed S.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/alloc_count.h"
#include "dmt/common/random.h"
#include "dmt/streams/scaler.h"
#include "bench_json.h"
#include "harness.h"

DMT_DEFINE_COUNTING_ALLOCATOR();

namespace dmt::bench {
namespace {

struct Measurement {
  double into_ns = 0.0;
  double into_allocs = 0.0;
  double batch_ns = 0.0;
  double batch_allocs = 0.0;
};

Measurement MeasureModel(const std::string& name,
                         const streams::DatasetSpec& spec,
                         const Options& options) {
  const std::size_t samples =
      streams::EffectiveSamples(spec, options.max_samples);
  const std::uint64_t seed = DeriveSeed(options.seed, spec.name, name);
  std::unique_ptr<streams::Stream> stream = spec.make(samples, seed);
  std::unique_ptr<Classifier> model =
      MakeModel(name, static_cast<int>(spec.num_features),
                static_cast<int>(spec.num_classes), seed);

  // Train on the full prefix with the same normalization as the
  // prequential harness; the last scaled batch becomes the probe.
  const std::size_t batch_size =
      std::max<std::size_t>(1, samples / 1000);
  streams::OnlineMinMaxScaler scaler(stream->num_features());
  Batch batch(stream->num_features(), batch_size);
  Batch probe(stream->num_features(), batch_size);
  while (true) {
    batch.clear();
    if (stream->FillBatch(batch_size, &batch) == 0) break;
    scaler.FitTransform(&batch);
    model->PartialFit(batch);
    std::swap(batch, probe);
  }

  const int c = model->num_classes();
  std::vector<double> row(c);
  ProbaMatrix proba;
  // Warm-up sizes every scratch buffer.
  for (std::size_t i = 0; i < probe.size(); ++i) {
    model->PredictProbaInto(probe.row(i), row);
  }
  model->PredictBatch(probe, &proba);

  // Enough repetitions for stable timing on small probes.
  const std::size_t reps = std::max<std::size_t>(1, 20'000 / probe.size());
  const double scored =
      static_cast<double>(reps) * static_cast<double>(probe.size());
  Measurement m;

  alloc_count::Reset();
  auto t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < probe.size(); ++i) {
      model->PredictProbaInto(probe.row(i), row);
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  m.into_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
              scored;
  m.into_allocs = static_cast<double>(alloc_count::allocations) / scored;

  alloc_count::Reset();
  t0 = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    model->PredictBatch(probe, &proba);
  }
  t1 = std::chrono::steady_clock::now();
  m.batch_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() /
               scored;
  m.batch_allocs = static_cast<double>(alloc_count::allocations) / scored;
  return m;
}

int Main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);
  if (options.datasets.empty()) options.datasets = {"SEA"};
  const streams::DatasetSpec spec =
      streams::DatasetByName(options.datasets.front());
  std::vector<std::string> models =
      options.models.empty() ? AllModels() : options.models;

  std::printf("Inference micro-benchmark: %s, %zu training samples, seed "
              "%llu\n",
              spec.name.c_str(),
              streams::EffectiveSamples(spec, options.max_samples),
              static_cast<unsigned long long>(options.seed));
  std::printf("%-12s %14s %16s %14s %16s\n", "Model", "into ns/sample",
              "into allocs/sam", "batch ns/sample", "batch allocs/sam");
  JsonBenchWriter json("infer",
                       streams::EffectiveSamples(spec, options.max_samples),
                       options.seed);
  for (const std::string& name : models) {
    const Measurement m = MeasureModel(name, spec, options);
    std::printf("%-12s %14.1f %16.3f %14.1f %16.3f\n", name.c_str(),
                m.into_ns, m.into_allocs, m.batch_ns, m.batch_allocs);
    json.AddResult(spec.name, name,
                   {{"into_ns_per_sample", m.into_ns},
                    {"into_allocs_per_sample", m.into_allocs},
                    {"batch_ns_per_sample", m.batch_ns},
                    {"batch_allocs_per_sample", m.batch_allocs}});
  }
  json.WriteTo("BENCH_infer.json");
  return 0;
}

}  // namespace
}  // namespace dmt::bench

int main(int argc, char** argv) { return dmt::bench::Main(argc, argv); }
