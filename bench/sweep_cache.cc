#include "sweep_cache.h"

#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <utility>

#include "dmt/common/random.h"

namespace dmt::bench {

namespace {

// Keeps file names readable; uniqueness comes from the appended hash.
std::string Sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const unsigned char u = static_cast<unsigned char>(c);
    out.push_back(std::isalnum(u) || c == '.' || c == '-' ? c : '_');
  }
  return out;
}

bool ReadCellFile(const std::string& path, CellResult* cell) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  std::getline(in, line);  // header
  if (!std::getline(in, line)) return false;
  std::stringstream stream(line);
  std::string field;
  std::getline(stream, cell->dataset, ',');
  std::getline(stream, cell->model, ',');
  auto read_double = [&](double* out) {
    std::getline(stream, field, ',');
    *out = std::strtod(field.c_str(), nullptr);
  };
  read_double(&cell->f1_mean);
  read_double(&cell->f1_std);
  read_double(&cell->splits_mean);
  read_double(&cell->splits_std);
  read_double(&cell->params_mean);
  read_double(&cell->params_std);
  read_double(&cell->time_mean);
  read_double(&cell->time_std);
  return true;
}

}  // namespace

SweepCache::SweepCache(std::string root) : root_(std::move(root)) {}

std::string SweepCache::CellFileName(const CellKey& key) {
  // 0 is a fixed salt: this hash names files, it never seeds an RNG.
  const std::uint64_t hash = DeriveSeed(0, key.dataset, key.model);
  std::ostringstream name;
  name << "cells/" << Sanitize(key.dataset) << "__" << Sanitize(key.model)
       << "__s" << key.samples << "_r" << key.seed << "_h" << std::hex
       << (hash & 0xffffffffULL) << ".csv";
  return name.str();
}

std::string SweepCache::CellPath(const CellKey& key) const {
  return root_ + "/" + CellFileName(key);
}

std::optional<CellResult> SweepCache::Load(const CellKey& key) {
  const std::string path = CellPath(key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = index_.find(path); it != index_.end()) {
      return it->second;
    }
  }
  CellResult cell;
  if (!ReadCellFile(path, &cell)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  index_.emplace(path, cell);
  return cell;
}

void SweepCache::Store(const CellKey& key, const CellResult& cell) {
  const std::string path = CellPath(key);
  const std::filesystem::path target(path);
  std::error_code ec;
  std::filesystem::create_directories(target.parent_path(), ec);

  std::uint64_t temp_id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    temp_id = ++temp_counter_;
    index_.insert_or_assign(path, cell);
  }
  // Unique temp name per writer, then an atomic rename publishes the cell;
  // readers never observe a half-written file.
  std::ostringstream temp_name;
  temp_name << path << ".tmp." << ::getpid() << "." << temp_id;
  {
    std::ofstream out(temp_name.str());
    // max_digits10: doubles survive the text round-trip bit-exactly, so
    // cache hits are indistinguishable from recomputation.
    out << std::setprecision(17);
    out << "dataset,model,f1_mean,f1_std,splits_mean,splits_std,params_mean,"
           "params_std,time_mean,time_std\n";
    out << cell.dataset << ',' << cell.model << ',' << cell.f1_mean << ','
        << cell.f1_std << ',' << cell.splits_mean << ',' << cell.splits_std
        << ',' << cell.params_mean << ',' << cell.params_std << ','
        << cell.time_mean << ',' << cell.time_std << '\n';
  }
  std::filesystem::rename(temp_name.str(), target, ec);
  if (ec) std::filesystem::remove(temp_name.str(), ec);
}

}  // namespace dmt::bench
