// Micro-benchmarks (google-benchmark) for the per-step costs claimed in the
// paper (Sec. IV-C): the DMT node update is O(m*n*c + m^2*v*c). The sweeps
// vary the number of features m and classes c at a fixed batch size, plus
// reference costs of the substrates (GLM update, ADWIN, VFDT training).
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "dmt/common/random.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/drift/adwin.h"
#include "dmt/linear/glm.h"
#include "dmt/trees/vfdt.h"

namespace {

using namespace dmt;

Batch MakeBatch(int num_features, int num_classes, int n, Rng* rng) {
  Batch batch(num_features);
  for (int i = 0; i < n; ++i) {
    std::vector<double> x(num_features);
    for (double& v : x) v = rng->Uniform();
    batch.Add(x, x[0] > 0.5 ? 1 % num_classes
                            : rng->UniformInt(0, num_classes - 1));
  }
  return batch;
}

void BM_DmtPartialFit(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  core::DynamicModelTree tree({.num_features = m, .num_classes = c});
  Rng rng(1);
  const Batch batch = MakeBatch(m, c, 50, &rng);
  for (auto _ : state) {
    tree.PartialFit(batch);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_DmtPartialFit)
    ->Args({5, 2})
    ->Args({20, 2})
    ->Args({80, 2})
    ->Args({20, 6})
    ->Args({20, 23});

void BM_DmtPredict(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  core::DynamicModelTree tree({.num_features = m, .num_classes = 2});
  Rng rng(2);
  Batch batch = MakeBatch(m, 2, 200, &rng);
  for (int i = 0; i < 20; ++i) tree.PartialFit(batch);
  std::vector<double> x(m, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Predict(x));
  }
}
BENCHMARK(BM_DmtPredict)->Arg(5)->Arg(80);

void BM_GlmFit(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int c = static_cast<int>(state.range(1));
  linear::Glm model({.num_features = m, .num_classes = c});
  Rng rng(3);
  const Batch batch = MakeBatch(m, c, 50, &rng);
  for (auto _ : state) {
    model.Fit(batch);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_GlmFit)->Args({5, 2})->Args({80, 2})->Args({20, 23});

void BM_AdwinUpdate(benchmark::State& state) {
  drift::Adwin adwin;
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(adwin.Update(rng.Bernoulli(0.3) ? 1.0 : 0.0));
  }
}
BENCHMARK(BM_AdwinUpdate);

void BM_VfdtTrain(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  trees::Vfdt tree({.num_features = m, .num_classes = 2});
  Rng rng(5);
  const Batch batch = MakeBatch(m, 2, 50, &rng);
  for (auto _ : state) {
    tree.PartialFit(batch);
  }
  state.SetItemsProcessed(state.iterations() * 50);
}
BENCHMARK(BM_VfdtTrain)->Arg(5)->Arg(80);

}  // namespace

BENCHMARK_MAIN();
