// Reproduces Table VI of the paper: the four-category experiment summary.
// Scoring follows the caption: per category the best model gets "++", the
// worst "--", and the rest "+" or "-" depending on whether they are above
// or below the median. Categories: overall F1, F1 on the known-drift
// streams, complexity (mean number of splits), and computational
// efficiency (mean iteration time).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "dmt/common/stats.h"
#include "dmt/common/table.h"
#include "harness.h"

namespace {

// Scores values into ++ / + / - / -- per the caption rule. `higher_better`
// flips the orientation for complexity and time.
std::vector<std::string> Score(const std::vector<double>& values,
                               bool higher_better) {
  std::vector<double> oriented = values;
  if (!higher_better) {
    for (double& v : oriented) v = -v;
  }
  std::vector<double> sorted = oriented;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  const double best = sorted.back();
  const double worst = sorted.front();
  std::vector<std::string> scores;
  for (double v : oriented) {
    if (v == best) scores.push_back("++");
    else if (v == worst) scores.push_back("--");
    else if (v >= median) scores.push_back("+");
    else scores.push_back("-");
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  const std::vector<std::string> models =
      options.models.empty() ? bench::StandaloneModels() : options.models;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(models, options);
  const std::vector<streams::DatasetSpec> datasets =
      bench::SelectedDatasets(options);

  std::vector<double> overall_f1;
  std::vector<double> drift_f1;
  std::vector<double> complexity;
  std::vector<double> time;
  for (const std::string& model : models) {
    RunningStats f1_all;
    RunningStats f1_drift;
    RunningStats splits;
    RunningStats seconds;
    for (const auto& spec : datasets) {
      const bench::CellResult* cell = bench::FindCell(cells, spec.name, model);
      if (cell == nullptr || cell->failed) continue;
      f1_all.Add(cell->f1_mean);
      if (spec.known_drift) f1_drift.Add(cell->f1_mean);
      splits.Add(cell->splits_mean);
      seconds.Add(cell->time_mean);
    }
    overall_f1.push_back(f1_all.mean());
    drift_f1.push_back(f1_drift.mean());
    complexity.push_back(splits.mean());
    time.push_back(seconds.mean());
  }

  const std::vector<std::string> s1 = Score(overall_f1, true);
  const std::vector<std::string> s2 = Score(drift_f1, true);
  const std::vector<std::string> s3 = Score(complexity, false);
  const std::vector<std::string> s4 = Score(time, false);

  TextTable table({"Model", "Overall Pred. Perf.", "Pred. Perf. Known Drift",
                   "Complexity/Interpret.", "Comput. Efficiency"});
  for (std::size_t i = 0; i < models.size(); ++i) {
    table.AddRow({models[i], s1[i], s2[i], s3[i], s4[i]});
  }
  std::printf("Table VI: experiment summary (caption scoring rule), samples "
              "capped at %zu, seed %llu\n\n%s\n",
              options.max_samples,
              static_cast<unsigned long long>(options.seed),
              table.ToString().c_str());
  return 0;
}
