#include "harness.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <sstream>

#include "dmt/common/parse.h"
#include "dmt/common/random.h"
#include "dmt/obs/telemetry.h"
#include "dmt/common/thread_pool.h"
#include "dmt/core/dynamic_model_tree.h"
#include "dmt/robust/failpoint.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/ensemble/online_bagging.h"
#include "dmt/ensemble/online_boosting.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/serial/model_io.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/sgt.h"
#include "dmt/trees/vfdt.h"
#include "sweep_cache.h"
#include "sweep_manifest.h"

namespace dmt::bench {

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

// File-name-safe rendering of a dataset/model name ("VFDT(MC)" -> "VFDT_MC_").
std::string SanitizeName(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  return safe;
}

// FNV-1a over the raw (unsanitized) names, rendered as 8 hex digits: the
// collision-breaking suffix for ArtifactStem. Deliberately not std::hash
// (implementation-defined across standard libraries); artifact names must
// be stable across platforms.
std::string RawNameHash(const std::string& raw) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : raw) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "%08x",
                static_cast<unsigned>(h ^ (h >> 32)));
  return buffer;
}

// One TELEMETRY_<dataset>__<model>.json per computed cell, next to the
// BENCH_*.json outputs the table binaries write. Stems are disambiguated
// through ArtifactStem, so two distinct model names that sanitize equal
// ("VFDT(MC)" vs "VFDT_MC_") can never silently overwrite each other.
void WriteTelemetryArtifacts(const std::vector<CellResult>& results,
                             const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(options.telemetry_dir, ec);
  std::map<std::string, std::string> used_stems;
  for (const CellResult& cell : results) {
    if (cell.telemetry_json.empty()) continue;
    const std::filesystem::path path =
        std::filesystem::path(options.telemetry_dir) /
        ("TELEMETRY_" + ArtifactStem(cell.dataset, cell.model, &used_stems) +
         ".json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "[sweep] cannot write %s\n", path.string().c_str());
      continue;
    }
    out << cell.telemetry_json;
    // Streaming can fail after a successful open (disk full, quota); a
    // silent half-written artifact would poison downstream dashboards.
    out.flush();
    if (!out) {
      std::fprintf(stderr, "[sweep] write failed for %s\n",
                   path.string().c_str());
    }
  }
}

}  // namespace

namespace {

constexpr const char kUsage[] =
    "options: --samples N --seed S --datasets a,b --models a,b --jobs N\n"
    "         --no-cache --member-parallel --cache-dir D\n"
    "         --telemetry --telemetry-dir D\n"
    "         --inject nan=R,inf=R,missing=R,flip=R,truncate=R\n"
    "         --failpoints name=P,name=P (e.g. cell:SEA/GLM=1)\n"
    "         --bad-input skip|impute|throw\n"
    "         --cell-timeout SECONDS --resume\n"
    "         --snapshot-every N --snapshot-dir D\n"
    "         --dmt-exact --dmt-gain-every N --dmt-gain-threshold X\n"
    "         --dmt-buckets N --dmt-f32-grad 0|1\n";

// Usage errors (unknown flag, missing value, malformed spec) exit 2: the
// conventional bad-invocation code, distinct from runtime failures (1).
[[noreturn]] void UsageError(const std::string& message) {
  std::fprintf(stderr, "%s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

}  // namespace

std::string ArtifactStem(const std::string& dataset, const std::string& model,
                         std::map<std::string, std::string>* used) {
  const std::string raw = dataset + "/" + model;
  std::string stem = SanitizeName(dataset) + "__" + SanitizeName(model);
  if (used != nullptr) {
    auto [it, inserted] = used->emplace(stem, raw);
    if (!inserted && it->second != raw) {
      // A *different* raw pair already owns this stem (sanitization is
      // lossy): append a stable hash of the raw names. Repeats of the same
      // pair keep the plain stem (idempotent within one sweep).
      stem += "_" + RawNameHash(raw);
      (*used)[stem] = raw;
    }
  }
  return stem;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) UsageError("missing value for " + arg);
      return argv[++i];
    };
    // Strict numeric values: "--samples abc", "--jobs ''" and
    // "--cell-timeout nan" are usage errors (exit 2), never a silent 0.
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string value = next();
      const std::optional<std::uint64_t> parsed = ParseU64(value);
      if (!parsed) {
        UsageError("bad numeric value for " + arg + ": '" + value + "'");
      }
      return *parsed;
    };
    auto next_double = [&]() -> double {
      const std::string value = next();
      const std::optional<double> parsed = ParseDouble(value);
      if (!parsed) {
        UsageError("bad numeric value for " + arg + ": '" + value + "'");
      }
      return *parsed;
    };
    if (arg == "--samples") {
      options.max_samples = next_u64();
    } else if (arg == "--seed") {
      options.seed = next_u64();
    } else if (arg == "--datasets") {
      options.datasets = SplitCsv(next());
    } else if (arg == "--models") {
      options.models = SplitCsv(next());
    } else if (arg == "--jobs") {
      options.jobs = next_u64();
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--member-parallel") {
      options.member_parallel = true;
    } else if (arg == "--cache-dir") {
      options.cache_dir = next();
    } else if (arg == "--telemetry") {
      options.telemetry = true;
    } else if (arg == "--telemetry-dir") {
      options.telemetry_dir = next();
    } else if (arg == "--inject") {
      options.inject_spec = next();
      try {
        robust::FaultSpec::Parse(options.inject_spec);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --inject spec: ") + e.what());
      }
    } else if (arg == "--failpoints") {
      options.failpoint_spec = next();
      try {
        // Dry-run parse into a scratch registry; the global one is armed
        // once, in RunSweep, before workers start.
        robust::FailpointRegistry scratch;
        scratch.ArmFromSpec(options.failpoint_spec, options.seed);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --failpoints spec: ") + e.what());
      }
    } else if (arg == "--bad-input") {
      const std::string value = next();
      try {
        options.bad_input_policy = BadInputPolicyFromString(value);
      } catch (const std::invalid_argument& e) {
        UsageError(std::string("bad --bad-input value: ") + e.what());
      }
    } else if (arg == "--cell-timeout") {
      options.cell_timeout_seconds = next_double();
      if (options.cell_timeout_seconds < 0.0) {
        UsageError("--cell-timeout must be >= 0");
      }
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--snapshot-every") {
      options.snapshot_every = next_u64();
    } else if (arg == "--snapshot-dir") {
      options.snapshot_dir = next();
    } else if (arg == "--dmt-exact") {
      options.dmt_exact = true;
    } else if (arg == "--dmt-gain-every") {
      options.dmt_gain_every = next_u64();
      if (options.dmt_gain_every < 1) {
        UsageError("--dmt-gain-every must be >= 1");
      }
    } else if (arg == "--dmt-gain-threshold") {
      options.dmt_gain_threshold = next_double();
      if (!(options.dmt_gain_threshold >= 0.0)) {
        UsageError("--dmt-gain-threshold must be >= 0");
      }
    } else if (arg == "--dmt-buckets") {
      options.dmt_buckets = next_u64();
      if (options.dmt_buckets > (std::size_t{1} << 20)) {
        UsageError("--dmt-buckets must be <= 2^20");
      }
    } else if (arg == "--dmt-f32-grad") {
      const std::string value = next();
      if (value == "0") {
        options.dmt_f32_grad = 0;
      } else if (value == "1") {
        options.dmt_f32_grad = 1;
      } else {
        UsageError("--dmt-f32-grad must be 0 or 1");
      }
    } else if (arg == "--help") {
      std::fprintf(stdout, "%s", kUsage);
      std::exit(0);
    } else {
      UsageError("unknown option: " + arg);
    }
  }
  return options;
}

std::vector<std::string> StandaloneModels() {
  return {"DMT", "FIMT-DD", "VFDT(MC)", "VFDT(NBA)", "HT-Ada", "EFDT"};
}

std::vector<std::string> AllModels() {
  std::vector<std::string> models = StandaloneModels();
  models.push_back("ForestEns");
  models.push_back("BaggingEns");
  return models;
}

std::unique_ptr<Classifier> MakeModel(const std::string& name,
                                      int num_features, int num_classes,
                                      std::uint64_t seed, ThreadPool* pool,
                                      const Options* options) {
  if (name == "DMT") {
    core::DmtConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    if (options != nullptr) {
      // --dmt-exact pins exact mode; the explicit knobs then override it
      // (so "--dmt-exact --dmt-gain-every 500" is a 500-sample schedule
      // with a zero dirty threshold).
      if (options->dmt_exact) {
        config.gain_test_every = 1;
        config.gain_test_threshold = 0.0;
        config.order_buckets = 0;
        config.candidate_grad_f32 = false;
      }
      if (options->dmt_gain_every != 0) {
        config.gain_test_every = options->dmt_gain_every;
      }
      if (options->dmt_gain_threshold >= 0.0) {
        config.gain_test_threshold = options->dmt_gain_threshold;
      }
      if (options->dmt_buckets != static_cast<std::size_t>(-1)) {
        config.order_buckets = options->dmt_buckets;
      }
      if (options->dmt_f32_grad >= 0) {
        config.candidate_grad_f32 = options->dmt_f32_grad != 0;
      }
    }
    return std::make_unique<core::DynamicModelTree>(config);
  }
  if (name == "FIMT-DD") {
    trees::FimtDdConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<trees::FimtDd>(config);
  }
  if (name == "VFDT(MC)" || name == "VFDT(NBA)") {
    trees::VfdtConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.leaf_prediction = name == "VFDT(MC)"
                                 ? trees::LeafPrediction::kMajorityClass
                                 : trees::LeafPrediction::kNaiveBayesAdaptive;
    config.seed = seed;
    return std::make_unique<trees::Vfdt>(config);
  }
  if (name == "HT-Ada") {
    trees::HatConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    return std::make_unique<trees::HoeffdingAdaptiveTree>(config);
  }
  if (name == "EFDT") {
    trees::EfdtConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    return std::make_unique<trees::Efdt>(config);
  }
  if (name == "ForestEns") {
    ensemble::AdaptiveRandomForestConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    config.pool = pool;
    return std::make_unique<ensemble::AdaptiveRandomForest>(config);
  }
  if (name == "BaggingEns") {
    ensemble::LeveragingBaggingConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    config.pool = pool;
    return std::make_unique<ensemble::LeveragingBagging>(config);
  }
  if (name == "OzaBag") {
    ensemble::OnlineBaggingConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<ensemble::OnlineBagging>(config);
  }
  if (name == "OzaBoost") {
    ensemble::OnlineBoostingConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<ensemble::OnlineBoosting>(config);
  }
  if (name == "SGT") {
    trees::SgtConfig config;
    config.num_features = num_features;
    return std::make_unique<trees::SgtClassifier>(config, num_classes);
  }
  if (name == "GLM") {
    linear::GlmConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<linear::GlmClassifier>(config);
  }
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::exit(1);
}

std::vector<streams::DatasetSpec> SelectedDatasets(const Options& options) {
  std::vector<streams::DatasetSpec> all = streams::AllDatasets();
  if (options.datasets.empty()) return all;
  std::vector<streams::DatasetSpec> selected;
  for (const std::string& name : options.datasets) {
    selected.push_back(streams::DatasetByName(name));
  }
  return selected;
}

CellResult RunCell(const streams::DatasetSpec& spec, const std::string& model,
                   const Options& options, ThreadPool* pool) {
  const std::size_t samples =
      streams::EffectiveSamples(spec, options.max_samples);
  // Seeded from data identity only, so a cell computes the same numbers no
  // matter which worker thread runs it, or in what order.
  const std::uint64_t cell_seed = DeriveSeed(options.seed, spec.name, model);

  // Supervision probe: "--failpoints cell:<dataset>/<model>=1" makes
  // exactly this cell throw, exercising the FAILED/retry machinery without
  // planting a real bug. Null (one dead branch) when unarmed.
  robust::Failpoint* cell_failpoint =
      robust::GlobalFailpoints().Find("cell:" + spec.name + "/" + model);
  DMT_FAILPOINT(cell_failpoint);

  std::unique_ptr<streams::Stream> stream = spec.make(samples, cell_seed);
  robust::FaultyStream* faulty = nullptr;
  if (!options.inject_spec.empty()) {
    // The injection RNG derives from the cell seed, never from thread or
    // schedule identity: the fault trace is part of the cell's determinism
    // contract (--jobs 1 and --jobs 8 corrupt the same instances).
    auto wrapped = std::make_unique<robust::FaultyStream>(
        std::move(stream), robust::FaultSpec::Parse(options.inject_spec),
        DeriveSeed(cell_seed, "inject"));
    faulty = wrapped.get();
    stream = std::move(wrapped);
  }
  std::unique_ptr<Classifier> classifier =
      MakeModel(model, static_cast<int>(spec.num_features),
                static_cast<int>(spec.num_classes), cell_seed, pool, &options);

  // One registry per cell, owned by this frame: the cell is the unit of
  // sweep parallelism, so no two threads ever share one (no atomics).
  obs::TelemetryRegistry registry;
  eval::PrequentialConfig config;
  config.expected_samples = samples;
  config.keep_series = options.keep_series;
  config.bad_input_policy = options.bad_input_policy;
  config.time_limit_seconds = options.cell_timeout_seconds;
  if (options.telemetry) config.telemetry = &registry;
  if (options.snapshot_every > 0) {
    std::error_code ec;
    std::filesystem::create_directories(options.snapshot_dir, ec);
    const std::string snapshot_path =
        (std::filesystem::path(options.snapshot_dir) /
         ("SNAPSHOT_" + SanitizeName(spec.name) + "__" + SanitizeName(model) +
          ".bin"))
            .string();
    Classifier* snapshot_target = classifier.get();
    config.snapshot_every = options.snapshot_every;
    config.snapshot_hook = [snapshot_target,
                            snapshot_path](std::size_t /*batches*/) {
      serial::SaveClassifierToFile(*snapshot_target, snapshot_path);
    };
  }
  const eval::PrequentialResult result =
      eval::RunPrequential(stream.get(), classifier.get(), config);

  CellResult cell;
  cell.dataset = spec.name;
  cell.model = model;
  cell.f1_mean = result.f1.mean();
  cell.f1_std = result.f1.stddev();
  cell.splits_mean = result.num_splits.mean();
  cell.splits_std = result.num_splits.stddev();
  cell.params_mean = result.num_params.mean();
  cell.params_std = result.num_params.stddev();
  cell.time_mean = result.iteration_seconds.mean();
  cell.time_std = result.iteration_seconds.stddev();
  cell.f1_series = result.f1_series;
  cell.splits_series = result.splits_series;
  cell.rows_dropped = result.rows_dropped;
  cell.values_imputed = result.values_imputed;
  if (faulty != nullptr) cell.fault_counts = faulty->counts();
  if (options.telemetry) {
    // Lazy flush, like the harness sanitize counters: only faulted runs
    // create inject.* keys, so clean telemetry goldens are untouched.
    if (faulty != nullptr) {
      const robust::FaultCounts& counts = faulty->counts();
      if (counts.nan > 0) *registry.Counter("inject.nan") += counts.nan;
      if (counts.inf > 0) *registry.Counter("inject.inf") += counts.inf;
      if (counts.missing > 0) {
        *registry.Counter("inject.missing") += counts.missing;
      }
      if (counts.flips > 0) *registry.Counter("inject.flips") += counts.flips;
      if (counts.truncated > 0) {
        *registry.Counter("inject.truncated") += counts.truncated;
      }
    }
    cell.telemetry_json = registry.ToJson();
    cell.telemetry_counters_json = registry.CountersJson();
  }
  return cell;
}

std::uint64_t CounterFromJson(const std::string& counters_json,
                              const std::string& name) {
  const std::string needle = "\"" + name + "\": ";
  const std::size_t at = counters_json.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(counters_json.c_str() + at + needle.size(), nullptr,
                       10);
}

void PrintRobustnessCounters(const std::vector<CellResult>& cells) {
  bool any = false;
  for (const CellResult& cell : cells) {
    if (cell.failed) continue;
    const robust::FaultCounts& f = cell.fault_counts;
    const std::uint64_t glm_resets =
        CounterFromJson(cell.telemetry_counters_json, "glm.resets");
    if (f.nan == 0 && f.inf == 0 && f.missing == 0 && f.flips == 0 &&
        f.truncated == 0 && glm_resets == 0) {
      continue;
    }
    if (!any) {
      std::printf(
          "\ndataset,model,inject.nan,inject.inf,inject.missing,"
          "inject.flips,inject.truncated,glm.resets\n");
      any = true;
    }
    std::printf("%s,%s,%llu,%llu,%llu,%llu,%llu,%llu\n", cell.dataset.c_str(),
                cell.model.c_str(), static_cast<unsigned long long>(f.nan),
                static_cast<unsigned long long>(f.inf),
                static_cast<unsigned long long>(f.missing),
                static_cast<unsigned long long>(f.flips),
                static_cast<unsigned long long>(f.truncated),
                static_cast<unsigned long long>(glm_resets));
  }
}

const CellResult* FindCell(const std::vector<CellResult>& cells,
                           const std::string& dataset,
                           const std::string& model) {
  for (const CellResult& cell : cells) {
    if (cell.dataset == dataset && cell.model == model) return &cell;
  }
  return nullptr;
}

std::vector<CellResult> RunSweep(const std::vector<std::string>& models,
                                 const Options& options) {
  const std::vector<std::string>& wanted =
      options.models.empty() ? models : options.models;
  const std::vector<streams::DatasetSpec> datasets =
      SelectedDatasets(options);

  // Arm the process-global failpoint registry before any worker exists;
  // workers then only read disjoint entries (their own cell's name), so no
  // synchronization is needed. The unconditional Clear makes repeated
  // RunSweep calls in one process reproducible: a clean sweep never sees
  // leftover arming from an earlier faulted one, and re-arming resets
  // probabilities, seeds and counters from the spec.
  robust::GlobalFailpoints().Clear();
  if (!options.failpoint_spec.empty()) {
    robust::GlobalFailpoints().ArmFromSpec(options.failpoint_spec,
                                           options.seed);
  }
  const bool faulted =
      !options.inject_spec.empty() || !options.failpoint_spec.empty();

  // Series runs bypass the cache entirely (cells never store series), and
  // so do member-parallel runs: LevBag's reset granularity differs in
  // parallel mode, so those cells must never mix with sequential ones.
  // Telemetry runs bypass it too: a cached cell carries no registry, so a
  // hit would silently return empty counters. Faulted runs (--inject /
  // --failpoints) bypass it because their numbers are deliberately
  // corrupted and must never poison clean runs.
  // Snapshot runs bypass it as well: a cache hit skips the cell entirely,
  // so no snapshot file would ever be written. Non-default DMT scheduler
  // knobs (--dmt-exact / --dmt-gain-*) bypass it because cache keys do not
  // encode them: a knob run must never poison (or be poisoned by) a
  // default-schedule sweep.
  const bool cache_enabled = options.use_cache && !options.keep_series &&
                             !options.member_parallel && !options.telemetry &&
                             !faulted && options.snapshot_every == 0 &&
                             !options.DmtSchedulerOverridden();
  SweepCache cache(options.cache_dir);

  // Progress manifest (checkpointed after every cell, crash-safe). Keyed by
  // (samples, seed, fault specs): a faulted sweep can never satisfy a clean
  // --resume. Shares the cache root, so --no-cache disables it too.
  std::unique_ptr<SweepManifest> manifest;
  if (options.use_cache) {
    manifest = std::make_unique<SweepManifest>(
        options.cache_dir,
        ManifestKey{options.max_samples, options.seed, options.inject_spec,
                    options.failpoint_spec});
    if (options.resume) {
      const std::size_t recovered = manifest->Load();
      if (recovered > 0) {
        std::fprintf(stderr, "[sweep] resuming: %zu cells recorded in %s\n",
                     recovered, manifest->path().c_str());
      }
    }
  }

  struct Pending {
    const streams::DatasetSpec* spec;
    const std::string* model;
    std::size_t index;  // slot in `results` -> output order is fixed up
                        // front, independent of completion order
  };
  std::vector<CellResult> results(datasets.size() * wanted.size());
  std::vector<Pending> pending;
  std::size_t index = 0;
  for (const streams::DatasetSpec& spec : datasets) {
    for (const std::string& model : wanted) {
      if (options.resume && manifest != nullptr) {
        if (const std::optional<ManifestEntry> entry =
                manifest->Find(spec.name, model);
            entry.has_value() && entry->failed) {
          // Recorded failure: render FAILED without re-running the cell.
          // (`ok` cells fall through to the cache; a miss recomputes.)
          CellResult cell;
          cell.dataset = spec.name;
          cell.model = model;
          cell.failed = true;
          cell.error = entry->error;
          results[index++] = std::move(cell);
          continue;
        }
      }
      const CellKey key{spec.name, model, options.max_samples, options.seed};
      if (cache_enabled) {
        if (std::optional<CellResult> hit = cache.Load(key)) {
          if (manifest != nullptr) {
            manifest->Record(spec.name, model, {false, ""});
          }
          results[index++] = std::move(*hit);
          continue;
        }
      }
      pending.push_back({&spec, &model, index++});
    }
  }
  if (pending.empty()) return results;  // telemetry runs never cache-hit

  const std::size_t jobs = std::min<std::size_t>(
      options.jobs == 0 ? ThreadPool::DefaultThreads() : options.jobs,
      pending.size());
  std::fprintf(stderr, "[sweep] %zu cells cached, computing %zu with %zu %s\n",
               results.size() - pending.size(), pending.size(), jobs,
               jobs == 1 ? "thread" : "threads");

  // In member-parallel mode one pool serves both layers: sweep cells are
  // its coarse tasks and the ensembles inside a cell push member tasks onto
  // the same queues (helping waits keep that deadlock-free). Otherwise the
  // pool exists only when fanning out cells, and models never see it.
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1 || (options.member_parallel && pending.size() > 0)) {
    pool = std::make_unique<ThreadPool>(
        options.member_parallel ? std::max<std::size_t>(jobs, 2) : jobs);
  }
  ThreadPool* member_pool = options.member_parallel ? pool.get() : nullptr;

  std::mutex progress_mutex;
  std::atomic<std::size_t> done{0};
  auto run_one = [&](const Pending& task) {
    // Supervised execution: a throwing cell is retried once with the
    // identical derived seed (RunCell re-derives everything from the cell
    // identity, so a deterministic fault fails identically while a
    // transient one gets a second chance), then recorded as FAILED. The
    // sweep always completes; one bad cell cannot take down the table.
    CellResult cell;
    try {
      cell = RunCell(*task.spec, *task.model, options, member_pool);
    } catch (const eval::DeadlineExceeded& deadline) {
      // No retry: a second attempt would just burn the budget again.
      cell = CellResult{};
      cell.failed = true;
      cell.error = deadline.what();
    } catch (const std::exception& first) {
      try {
        cell = RunCell(*task.spec, *task.model, options, member_pool);
      } catch (const std::exception& second) {
        cell = CellResult{};
        cell.failed = true;
        cell.error = second.what();
      }
    }
    cell.dataset = task.spec->name;  // failure paths skip RunCell's fill-in
    cell.model = *task.model;
    if (!cell.failed && cache_enabled) {
      CellResult stripped = cell;
      stripped.f1_series.clear();
      stripped.splits_series.clear();
      cache.Store({task.spec->name, *task.model, options.max_samples,
                   options.seed},
                  stripped);
    }
    if (manifest != nullptr) {
      manifest->Record(cell.dataset, cell.model, {cell.failed, cell.error});
    }
    const bool failed = cell.failed;
    const std::string error = cell.error;
    results[task.index] = std::move(cell);
    const std::size_t finished = ++done;
    std::lock_guard<std::mutex> lock(progress_mutex);
    if (failed) {
      std::fprintf(stderr, "[sweep] %zu/%zu %s / %s FAILED: %s\n", finished,
                   pending.size(), task.spec->name.c_str(),
                   task.model->c_str(), error.c_str());
    } else {
      std::fprintf(stderr, "[sweep] %zu/%zu %s / %s done\n", finished,
                   pending.size(), task.spec->name.c_str(),
                   task.model->c_str());
    }
  };

  if (jobs <= 1) {
    // Inline path: identical results by construction (per-cell seeds),
    // friendlier stack traces, no pool overhead for the cells themselves
    // (ensembles may still borrow `member_pool`).
    for (const Pending& task : pending) run_one(task);
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(pending.size());
    for (const Pending& task : pending) {
      futures.push_back(pool->Submit([&run_one, task]() { run_one(task); }));
    }
    for (std::future<void>& future : futures) GetHelping(pool.get(), &future);
  }
  if (options.telemetry) WriteTelemetryArtifacts(results, options);
  return results;
}

}  // namespace dmt::bench
