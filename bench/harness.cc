#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dmt/core/dynamic_model_tree.h"
#include "dmt/ensemble/adaptive_random_forest.h"
#include "dmt/ensemble/leveraging_bagging.h"
#include "dmt/linear/glm_classifier.h"
#include "dmt/trees/efdt.h"
#include "dmt/trees/fimtdd.h"
#include "dmt/trees/hoeffding_adaptive.h"
#include "dmt/trees/sgt.h"
#include "dmt/trees/vfdt.h"

namespace dmt::bench {

namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) parts.push_back(item);
  }
  return parts;
}

std::string CachePath(const Options& options) {
  std::ostringstream path;
  path << "bench_cache/sweep_s" << options.max_samples << "_r" << options.seed
       << ".csv";
  return path.str();
}

}  // namespace

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--samples") {
      options.max_samples = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--datasets") {
      options.datasets = SplitCsv(next());
    } else if (arg == "--models") {
      options.models = SplitCsv(next());
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--help") {
      std::fprintf(stderr,
                   "options: --samples N --seed S --datasets a,b --models "
                   "a,b --no-cache\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      std::exit(1);
    }
  }
  return options;
}

std::vector<std::string> StandaloneModels() {
  return {"DMT", "FIMT-DD", "VFDT(MC)", "VFDT(NBA)", "HT-Ada", "EFDT"};
}

std::vector<std::string> AllModels() {
  std::vector<std::string> models = StandaloneModels();
  models.push_back("ForestEns");
  models.push_back("BaggingEns");
  return models;
}

std::unique_ptr<Classifier> MakeModel(const std::string& name,
                                      int num_features, int num_classes,
                                      std::uint64_t seed) {
  if (name == "DMT") {
    core::DmtConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<core::DynamicModelTree>(config);
  }
  if (name == "FIMT-DD") {
    trees::FimtDdConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<trees::FimtDd>(config);
  }
  if (name == "VFDT(MC)" || name == "VFDT(NBA)") {
    trees::VfdtConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.leaf_prediction = name == "VFDT(MC)"
                                 ? trees::LeafPrediction::kMajorityClass
                                 : trees::LeafPrediction::kNaiveBayesAdaptive;
    config.seed = seed;
    return std::make_unique<trees::Vfdt>(config);
  }
  if (name == "HT-Ada") {
    trees::HatConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    return std::make_unique<trees::HoeffdingAdaptiveTree>(config);
  }
  if (name == "EFDT") {
    trees::EfdtConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    return std::make_unique<trees::Efdt>(config);
  }
  if (name == "ForestEns") {
    ensemble::AdaptiveRandomForestConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<ensemble::AdaptiveRandomForest>(config);
  }
  if (name == "BaggingEns") {
    ensemble::LeveragingBaggingConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<ensemble::LeveragingBagging>(config);
  }
  if (name == "SGT") {
    trees::SgtConfig config;
    config.num_features = num_features;
    return std::make_unique<trees::SgtClassifier>(config, num_classes);
  }
  if (name == "GLM") {
    linear::GlmConfig config;
    config.num_features = num_features;
    config.num_classes = num_classes;
    config.seed = seed;
    return std::make_unique<linear::GlmClassifier>(config);
  }
  std::fprintf(stderr, "unknown model: %s\n", name.c_str());
  std::exit(1);
}

std::vector<streams::DatasetSpec> SelectedDatasets(const Options& options) {
  std::vector<streams::DatasetSpec> all = streams::AllDatasets();
  if (options.datasets.empty()) return all;
  std::vector<streams::DatasetSpec> selected;
  for (const std::string& name : options.datasets) {
    selected.push_back(streams::DatasetByName(name));
  }
  return selected;
}

CellResult RunCell(const streams::DatasetSpec& spec, const std::string& model,
                   const Options& options) {
  const std::size_t samples =
      streams::EffectiveSamples(spec, options.max_samples);
  std::unique_ptr<streams::Stream> stream = spec.make(samples, options.seed);
  std::unique_ptr<Classifier> classifier =
      MakeModel(model, static_cast<int>(spec.num_features),
                static_cast<int>(spec.num_classes), options.seed);

  eval::PrequentialConfig config;
  config.expected_samples = samples;
  config.keep_series = options.keep_series;
  const eval::PrequentialResult result =
      eval::RunPrequential(stream.get(), classifier.get(), config);

  CellResult cell;
  cell.dataset = spec.name;
  cell.model = model;
  cell.f1_mean = result.f1.mean();
  cell.f1_std = result.f1.stddev();
  cell.splits_mean = result.num_splits.mean();
  cell.splits_std = result.num_splits.stddev();
  cell.params_mean = result.num_params.mean();
  cell.params_std = result.num_params.stddev();
  cell.time_mean = result.iteration_seconds.mean();
  cell.time_std = result.iteration_seconds.stddev();
  cell.f1_series = result.f1_series;
  cell.splits_series = result.splits_series;
  return cell;
}

namespace {

bool LoadCache(const std::string& path, std::vector<CellResult>* cells) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  std::getline(in, line);  // header
  while (std::getline(in, line)) {
    std::stringstream stream(line);
    CellResult cell;
    std::string field;
    std::getline(stream, cell.dataset, ',');
    std::getline(stream, cell.model, ',');
    auto read_double = [&](double* out) {
      std::getline(stream, field, ',');
      *out = std::strtod(field.c_str(), nullptr);
    };
    read_double(&cell.f1_mean);
    read_double(&cell.f1_std);
    read_double(&cell.splits_mean);
    read_double(&cell.splits_std);
    read_double(&cell.params_mean);
    read_double(&cell.params_std);
    read_double(&cell.time_mean);
    read_double(&cell.time_std);
    cells->push_back(std::move(cell));
  }
  return true;
}

void SaveCache(const std::string& path, const std::vector<CellResult>& cells) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  out << "dataset,model,f1_mean,f1_std,splits_mean,splits_std,params_mean,"
         "params_std,time_mean,time_std\n";
  for (const CellResult& cell : cells) {
    out << cell.dataset << ',' << cell.model << ',' << cell.f1_mean << ','
        << cell.f1_std << ',' << cell.splits_mean << ',' << cell.splits_std
        << ',' << cell.params_mean << ',' << cell.params_std << ','
        << cell.time_mean << ',' << cell.time_std << '\n';
  }
}

}  // namespace

const CellResult* FindCell(const std::vector<CellResult>& cells,
                           const std::string& dataset,
                           const std::string& model) {
  for (const CellResult& cell : cells) {
    if (cell.dataset == dataset && cell.model == model) return &cell;
  }
  return nullptr;
}

std::vector<CellResult> RunSweep(const std::vector<std::string>& models,
                                 const Options& options) {
  const std::vector<std::string>& wanted =
      options.models.empty() ? models : options.models;
  const std::vector<streams::DatasetSpec> datasets =
      SelectedDatasets(options);

  std::vector<CellResult> cache;
  const std::string cache_path = CachePath(options);
  if (options.use_cache && !options.keep_series) {
    LoadCache(cache_path, &cache);
  }

  std::vector<CellResult> results;
  bool cache_dirty = false;
  for (const streams::DatasetSpec& spec : datasets) {
    for (const std::string& model : wanted) {
      if (const CellResult* hit = FindCell(cache, spec.name, model);
          hit != nullptr && !options.keep_series) {
        results.push_back(*hit);
        continue;
      }
      std::fprintf(stderr, "[sweep] %s / %s ...\n", spec.name.c_str(),
                   model.c_str());
      CellResult cell = RunCell(spec, model, options);
      results.push_back(cell);
      if (!options.keep_series) {
        cell.f1_series.clear();
        cell.splits_series.clear();
        cache.push_back(std::move(cell));
        cache_dirty = true;
      }
    }
  }
  if (options.use_cache && cache_dirty && !options.keep_series) {
    SaveCache(cache_path, cache);
  }
  return results;
}

}  // namespace dmt::bench
