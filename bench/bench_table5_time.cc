// Reproduces Table V of the paper: mean +- std wall-clock seconds of one
// test-then-train iteration, averaged over all data sets. Absolute values
// depend on hardware and batch size; the ordering (VFDT fastest, EFDT
// slowest among trees, DMT/FIMT-DD in between) is the reproduced shape.
#include <cstdio>
#include <string>
#include <vector>

#include "dmt/common/stats.h"
#include "dmt/common/table.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  const std::vector<std::string> models =
      options.models.empty() ? bench::StandaloneModels() : options.models;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(models, options);
  const std::vector<streams::DatasetSpec> datasets =
      bench::SelectedDatasets(options);

  TextTable table({"Model", "Seconds per iteration (mean +- std)"});
  for (const std::string& model : models) {
    RunningStats across;
    for (const auto& spec : datasets) {
      const bench::CellResult* cell = bench::FindCell(cells, spec.name, model);
      if (cell != nullptr && !cell->failed) across.Add(cell->time_mean);
    }
    table.AddRow({model, MeanStdCell(across.mean(), across.stddev(), 5)});
  }
  std::printf("Table V: computation time per test/train iteration (lower is "
              "better), samples capped at %zu, seed %llu\n\n%s\n",
              options.max_samples,
              static_cast<unsigned long long>(options.seed),
              table.ToString().c_str());
  bench::PrintRobustnessCounters(cells);
  return 0;
}
