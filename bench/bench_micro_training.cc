// Micro-benchmark of the training hot path: per-model ns/sample and heap
// allocations/sample for PartialFit in steady state, mirroring
// bench_micro_inference on the scoring side.
//
// Each model first trains on a warm-up prefix of the stream (half the
// samples) so trees carry realistic structure and every scratch buffer has
// reached its steady-state capacity; the remaining stream is then fed
// through PartialFit under the timer and the thread-local counting
// allocator (alloc_count.h). Normalization runs outside the timed region,
// exactly like the prequential harness, so the measured quantity is the
// pure PartialFit cost.
//
// The headline claim pinned by tests/allocation_test.cc: DMT, VFDT and GLM
// training performs 0.000 heap allocations per sample once warm (candidate
// stores, proposal buffers and recursion scratch are all grow-only).
//
// Flags (see harness.h): --samples N (total per dataset, default 50000),
// --models a,b (default DMT,VFDT(MC),FIMT-DD,GLM), --datasets a,b (default
// SEA,Agrawal,Hyperplane), --seed S. The DMT scheduler knobs (--dmt-exact /
// --dmt-gain-*) apply to the DMT cells. --telemetry attaches a counter
// registry per cell and writes TELEMETRY_<dataset>__<model>.json artifacts
// (counters only -- the seed-deterministic surface; CI greps these to pin
// the scheduler's skip behavior), and additionally prints a wall-clock
// phase-timer breakdown (route/gather, model step, scatter, gain battery)
// under each row for models that register phase timers (currently DMT).
// Results are also written to BENCH_train.json (bench_json.h).
#include <cctype>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "dmt/common/alloc_count.h"
#include "dmt/common/random.h"
#include "dmt/obs/telemetry.h"
#include "dmt/streams/scaler.h"
#include "bench_json.h"
#include "harness.h"

DMT_DEFINE_COUNTING_ALLOCATOR();

namespace dmt::bench {
namespace {

struct Measurement {
  double train_ns = 0.0;
  double train_allocs = 0.0;
  std::size_t measured_samples = 0;
  // Counters-only JSON; populated when --telemetry (covers warm-up and the
  // timed region alike -- the whole stream's training behavior).
  std::string telemetry_counters_json;
  // Phase-timer breakdown of the training hot path (route/gather, model
  // step, stored-candidate scatter, gain battery); populated when
  // --telemetry and the model registers phase timers (currently DMT).
  struct Phase {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
  };
  std::vector<Phase> phases;
};

// File-name-safe rendering matching the sweep harness's artifact naming.
std::string SanitizeName(const std::string& name) {
  std::string safe = name;
  for (char& c : safe) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '-') c = '_';
  }
  return safe;
}

Measurement MeasureModel(const std::string& name,
                         const streams::DatasetSpec& spec,
                         const Options& options) {
  const std::size_t samples =
      streams::EffectiveSamples(spec, options.max_samples);
  const std::uint64_t seed = DeriveSeed(options.seed, spec.name, name);
  std::unique_ptr<streams::Stream> stream = spec.make(samples, seed);
  std::unique_ptr<Classifier> model =
      MakeModel(name, static_cast<int>(spec.num_features),
                static_cast<int>(spec.num_classes), seed, nullptr, &options);
  // Counters are raw pointer increments, but attach only on demand so the
  // default timing surface is untouched.
  obs::TelemetryRegistry registry;
  if (options.telemetry) model->AttachTelemetry(&registry);

  // Prequential batch size (0.1% of the stream) and normalization match the
  // sweep harness; the first half of the stream is the warm-up prefix.
  const std::size_t batch_size = std::max<std::size_t>(1, samples / 1000);
  const std::size_t warmup_samples = samples / 2;
  streams::OnlineMinMaxScaler scaler(stream->num_features());
  Batch batch(stream->num_features(), batch_size);

  std::size_t consumed = 0;
  while (consumed < warmup_samples) {
    batch.clear();
    const std::size_t got = stream->FillBatch(batch_size, &batch);
    if (got == 0) break;
    consumed += got;
    scaler.FitTransform(&batch);
    model->PartialFit(batch);
  }

  Measurement m;
  double total_ns = 0.0;
  std::size_t total_allocs = 0;
  while (true) {
    batch.clear();
    if (stream->FillBatch(batch_size, &batch) == 0) break;
    scaler.FitTransform(&batch);
    alloc_count::Reset();
    const auto t0 = std::chrono::steady_clock::now();
    model->PartialFit(batch);
    const auto t1 = std::chrono::steady_clock::now();
    total_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
    total_allocs += alloc_count::allocations;
    m.measured_samples += batch.size();
  }
  if (m.measured_samples > 0) {
    m.train_ns = total_ns / static_cast<double>(m.measured_samples);
    m.train_allocs = static_cast<double>(total_allocs) /
                     static_cast<double>(m.measured_samples);
  }
  if (options.telemetry) {
    m.telemetry_counters_json = registry.CountersJson();
    // Snapshot the hot-path phase timers. Timer() creates-on-first-use, so
    // models without phase instrumentation just report four zero phases,
    // filtered out below.
    for (const char* phase :
         {"dmt.phase.route", "dmt.phase.model_step", "dmt.phase.scatter",
          "dmt.phase.gain_battery"}) {
      const obs::PhaseTimer* timer = registry.Timer(phase);
      if (timer->calls == 0) continue;
      m.phases.push_back({phase, timer->seconds, timer->calls});
    }
  }
  return m;
}

int Main(int argc, char** argv) {
  Options options = ParseOptions(argc, argv);
  if (options.datasets.empty()) {
    options.datasets = {"SEA", "Agrawal", "Hyperplane"};
  }
  std::vector<std::string> models = options.models;
  if (models.empty()) models = {"DMT", "VFDT(MC)", "FIMT-DD", "GLM"};

  std::printf("Training micro-benchmark: %zu samples/dataset (half warm-up), "
              "seed %llu\n",
              options.max_samples,
              static_cast<unsigned long long>(options.seed));
  std::printf("%-12s %-12s %16s %18s\n", "Dataset", "Model",
              "train ns/sample", "train allocs/sam");
  JsonBenchWriter json("train", options.max_samples, options.seed);
  for (const std::string& dataset : options.datasets) {
    const streams::DatasetSpec spec = streams::DatasetByName(dataset);
    for (const std::string& name : models) {
      const Measurement m = MeasureModel(name, spec, options);
      std::printf("%-12s %-12s %16.1f %18.3f\n", spec.name.c_str(),
                  name.c_str(), m.train_ns, m.train_allocs);
      if (!m.phases.empty()) {
        // Wall-clock phase breakdown of the whole run (warm-up included);
        // percentages are of the instrumented phase total, not of the
        // timed region above.
        double phase_total = 0.0;
        for (const Measurement::Phase& p : m.phases) phase_total += p.seconds;
        for (const Measurement::Phase& p : m.phases) {
          std::printf("  %-28s %9.3f ms %6.1f%% %12llu calls\n",
                      p.name.c_str(), p.seconds * 1e3,
                      phase_total > 0.0 ? 100.0 * p.seconds / phase_total
                                        : 0.0,
                      static_cast<unsigned long long>(p.calls));
        }
      }
      json.AddResult(spec.name, name,
                     {{"ns_per_sample", m.train_ns},
                      {"allocs_per_sample", m.train_allocs}});
      if (!m.telemetry_counters_json.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.telemetry_dir, ec);
        const std::filesystem::path path =
            std::filesystem::path(options.telemetry_dir) /
            ("TELEMETRY_" + SanitizeName(spec.name) + "__" +
             SanitizeName(name) + ".json");
        std::ofstream out(path);
        if (out) {
          out << m.telemetry_counters_json;
        } else {
          std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
        }
      }
    }
  }
  json.WriteTo("BENCH_train.json");
  return 0;
}

}  // namespace
}  // namespace dmt::bench

int main(int argc, char** argv) { return dmt::bench::Main(argc, argv); }
