// Reproduces Table III of the paper: number of splits (mean +- std over
// batches; the paper's interpretability proxy, Sec. VI-D2). Lower is
// better; the Model Trees (DMT, FIMT-DD) should stay far below the
// Hoeffding trees, and DMT should rank first on average.
#include <cstdio>
#include <string>
#include <vector>

#include "dmt/common/stats.h"
#include "dmt/common/table.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  const std::vector<std::string> models =
      options.models.empty() ? bench::StandaloneModels() : options.models;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(models, options);
  const std::vector<streams::DatasetSpec> datasets =
      bench::SelectedDatasets(options);

  std::vector<std::string> header = {"Model"};
  for (const auto& spec : datasets) header.push_back(spec.name);
  header.push_back("Mean");
  TextTable table(header);
  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    RunningStats across;
    for (const auto& spec : datasets) {
      const bench::CellResult* cell = bench::FindCell(cells, spec.name, model);
      if (cell == nullptr) { row.push_back("-"); continue; }
      if (cell->failed) { row.push_back("FAILED"); continue; }
      row.push_back(MeanStdCell(cell->splits_mean, cell->splits_std, 1));
      across.Add(cell->splits_mean);
    }
    row.push_back(MeanStdCell(across.mean(), across.stddev(), 1));
    table.AddRow(std::move(row));
  }
  std::printf("Table III: number of splits (lower is better), samples capped "
              "at %zu, seed %llu\n\n%s\n",
              options.max_samples,
              static_cast<unsigned long long>(options.seed),
              table.ToString().c_str());
  return 0;
}
