// Ablation of the AIC confidence threshold epsilon (paper Sec. V-C): the
// hyperparameter trades update speed against robustness. The split
// threshold is k - log(epsilon), so epsilon matters most when the simple
// models are small (k small); the sweep therefore uses low-dimensional
// binary concepts where splits are necessary (a piecewise "XOR-like"
// tree-teacher stream) or tempting but useless (noisy SEA), plus one
// higher-dimensional drift stream.
#include <cstdio>
#include <memory>
#include <vector>

#include "dmt/core/dynamic_model_tree.h"
#include "dmt/eval/prequential.h"
#include "dmt/streams/concept_stream.h"
#include "harness.h"

namespace {

// A stream whose concept NEEDS splits: depth-2 axis regions over 4 features.
std::unique_ptr<dmt::streams::Stream> MakePiecewise(std::size_t samples,
                                                    std::uint64_t seed) {
  dmt::streams::ConceptStreamConfig config;
  config.name = "Piecewise";
  config.num_features = 4;
  config.num_classes = 2;
  config.teacher = dmt::streams::TeacherKind::kTree;
  config.tree_depth = 2;
  config.leaf_purity = 0.95;
  config.total_samples = samples;
  config.seed = seed;
  return std::make_unique<dmt::streams::ConceptStream>(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);

  std::printf("Ablation: AIC threshold epsilon (DMT), samples capped at "
              "%zu\n",
              options.max_samples);
  std::printf("%-14s %10s %12s %8s %8s %8s %8s\n", "stream", "epsilon",
              "threshold", "F1", "splits", "repl", "prunes");

  struct StreamSpec {
    const char* name;
    std::size_t num_features;
    std::size_t num_classes;
  };
  for (const char* name : {"Piecewise", "SEA", "Insects-Abr"}) {
    for (double epsilon : {1e-1, 1e-4, 1e-8, 1e-16}) {
      std::unique_ptr<streams::Stream> stream;
      std::size_t samples = options.max_samples;
      if (std::string(name) == "Piecewise") {
        stream = MakePiecewise(samples, options.seed);
      } else {
        const streams::DatasetSpec spec = streams::DatasetByName(name);
        samples = streams::EffectiveSamples(spec, options.max_samples);
        stream = spec.make(samples, options.seed);
      }
      core::DmtConfig config;
      config.num_features = static_cast<int>(stream->num_features());
      config.num_classes = static_cast<int>(stream->num_classes());
      config.epsilon = epsilon;
      config.seed = options.seed;
      core::DynamicModelTree tree(config);
      eval::PrequentialConfig eval_config;
      eval_config.expected_samples = samples;
      const eval::PrequentialResult result =
          eval::RunPrequential(stream.get(), &tree, eval_config);
      std::printf("%-14s %10.0e %12.1f %8.3f %8.1f %8zu %8zu\n", name,
                  epsilon, tree.SplitThreshold(), result.f1.mean(),
                  result.num_splits.mean(), tree.num_subtree_replacements(),
                  tree.num_prunes());
    }
  }
  return 0;
}
