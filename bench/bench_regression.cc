// Regression head-to-head: the regression Dynamic Model Tree vs. the
// original FIMT-DD (its native setting) on the Friedman #1 benchmark
// (stationary and with abrupt drift) and on an incrementally drifting
// linear plane. Reports prequential MAE / RMSE / R^2 / splits.
#include <cstdio>
#include <memory>

#include "dmt/core/dmt_regressor.h"
#include "dmt/eval/regression_prequential.h"
#include "dmt/streams/regression_streams.h"
#include "dmt/trees/fimtdd_regressor.h"
#include "harness.h"

namespace {

using namespace dmt;

std::unique_ptr<streams::RegressionStream> MakeStream(
    const std::string& name, std::size_t samples, std::uint64_t seed) {
  if (name == "Fried") {
    streams::FriedConfig config;
    config.total_samples = samples;
    config.seed = seed;
    return std::make_unique<streams::FriedGenerator>(config);
  }
  if (name == "Fried-drift") {
    streams::FriedConfig config;
    config.total_samples = samples;
    config.drift_points = {samples / 3, 2 * samples / 3};
    config.seed = seed;
    return std::make_unique<streams::FriedGenerator>(config);
  }
  streams::PlaneConfig config;
  config.total_samples = samples;
  config.mag_change = 0.001 * 100'000.0 / static_cast<double>(samples);
  config.seed = seed;
  return std::make_unique<streams::PlaneGenerator>(config);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmt;
  const bench::Options options = bench::ParseOptions(argc, argv);
  const std::size_t samples = options.max_samples;

  std::printf("Regression: DMT-R vs. FIMT-DD (native regression), %zu "
              "observations per stream\n\n",
              samples);
  std::printf("%-12s %-10s %8s %8s %8s %8s %8s\n", "stream", "model", "MAE",
              "RMSE", "R2", "splits", "prunes");
  for (const char* stream_name : {"Fried", "Fried-drift", "Plane"}) {
    for (const char* model_name : {"DMT-R", "FIMT-DD-R"}) {
      auto stream = MakeStream(stream_name, samples, options.seed);
      eval::RegressionPrequentialConfig config;
      config.expected_samples = samples;
      eval::RegressionPrequentialResult result;
      std::size_t prunes = 0;
      if (std::string(model_name) == "DMT-R") {
        core::DmtRegressor tree(
            {.num_features = static_cast<int>(stream->num_features()),
             .learning_rate = 0.05,
             .seed = options.seed});
        result = eval::RunRegressionPrequential(
            stream.get(), eval::MakeRegressorApi(&tree), config);
        prunes = tree.num_prunes() + tree.num_subtree_replacements();
      } else {
        trees::FimtDdRegressor tree(
            {.num_features = static_cast<int>(stream->num_features()),
             .seed = options.seed});
        result = eval::RunRegressionPrequential(
            stream.get(), eval::MakeRegressorApi(&tree), config);
        prunes = tree.NumPrunes();
      }
      std::printf("%-12s %-10s %8.3f %8.3f %8.3f %8.1f %8zu\n", stream_name,
                  model_name, result.mae.mean(), result.rmse.mean(),
                  result.r_squared, result.num_splits.mean(), prunes);
    }
  }
  return 0;
}
