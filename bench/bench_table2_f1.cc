// Reproduces Table II of the paper: prequential F1 (mean +- std over
// test-then-train batches) for every model on every data stream, plus the
// cross-data-set mean. Higher is better; the DMT should rank first or second
// on the streams with known drift and best on average.
#include <cstdio>
#include <string>
#include <vector>

#include "dmt/common/stats.h"
#include "dmt/common/table.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  const std::vector<std::string> models =
      options.models.empty() ? bench::AllModels() : options.models;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(models, options);
  const std::vector<streams::DatasetSpec> datasets =
      bench::SelectedDatasets(options);

  std::vector<std::string> header = {"Model"};
  for (const auto& spec : datasets) header.push_back(spec.name);
  header.push_back("Mean");
  TextTable table(header);

  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    RunningStats across;
    for (const auto& spec : datasets) {
      const bench::CellResult* cell =
          bench::FindCell(cells, spec.name, model);
      if (cell == nullptr) {
        row.push_back("-");
        continue;
      }
      if (cell->failed) {
        // Supervised sweep: the cell threw twice (or hit its deadline);
        // render the failure and keep it out of the cross-data-set mean.
        row.push_back("FAILED");
        continue;
      }
      row.push_back(MeanStdCell(cell->f1_mean, cell->f1_std));
      across.Add(cell->f1_mean);
    }
    row.push_back(MeanStdCell(across.mean(), across.stddev()));
    table.AddRow(std::move(row));
  }

  std::printf("Table II: F1 measure (higher is better), samples capped at "
              "%zu per stream, seed %llu\n\n",
              options.max_samples,
              static_cast<unsigned long long>(options.seed));
  std::printf("%s\n", table.ToString().c_str());
  bench::PrintRobustnessCounters(cells);
  return 0;
}
