// Reproduces Table I of the paper: the 13 evaluation streams with their
// sample counts, features, classes and majority-class counts. For the
// real-world surrogates the full-size schema comes from Table I itself;
// the realized majority count of the generated (possibly capped) stream is
// measured by actually drawing it.
#include <cstdio>
#include <memory>
#include <vector>

#include "dmt/common/table.h"
#include "dmt/streams/stream.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  const bench::Options options = bench::ParseOptions(argc, argv);

  TextTable table({"Name", "#Samples(paper)", "#Samples(run)", "#Features",
                   "#Classes", "Majority(paper)", "Majority(run)"});
  for (const streams::DatasetSpec& spec : bench::SelectedDatasets(options)) {
    const std::size_t samples =
        streams::EffectiveSamples(spec, options.max_samples);
    std::unique_ptr<streams::Stream> stream =
        spec.make(samples, options.seed);
    std::vector<std::size_t> counts(spec.num_classes, 0);
    Instance instance;
    while (stream->NextInstance(&instance)) ++counts[instance.y];
    std::size_t majority = 0;
    for (std::size_t c : counts) majority = std::max(majority, c);
    table.AddRow({spec.name, std::to_string(spec.full_samples),
                  std::to_string(samples), std::to_string(spec.num_features),
                  std::to_string(spec.num_classes),
                  spec.majority_count > 0 ? std::to_string(spec.majority_count)
                                          : "-",
                  std::to_string(majority)});
  }
  std::printf("Table I: data sets (surrogates for the real-world sets; see "
              "DESIGN.md)\n\n%s\n",
              table.ToString().c_str());
  return 0;
}
