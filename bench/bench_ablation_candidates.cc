// Ablation of the bounded candidate store (paper Sec. V-D): the paper
// recommends storing 3m candidates and replacing at most 50% per step.
// This sweep varies both knobs and reports the split-quality/F1 impact.
#include <cstdio>
#include <memory>
#include <vector>

#include "dmt/core/dynamic_model_tree.h"
#include "dmt/eval/prequential.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) options.datasets = {"SEA", "TueEyeQ"};

  std::printf("Ablation: candidate store (DMT), samples capped at %zu\n",
              options.max_samples);
  std::printf("%-10s %16s %14s %8s %8s\n", "dataset", "max_candidates",
              "replace_rate", "F1", "splits");
  for (const streams::DatasetSpec& spec : bench::SelectedDatasets(options)) {
    const int m = static_cast<int>(spec.num_features);
    const std::vector<std::size_t> capacities = {
        static_cast<std::size_t>(m), static_cast<std::size_t>(3 * m),
        static_cast<std::size_t>(10 * m)};
    for (std::size_t capacity : capacities) {
      for (double rate : {0.1, 0.5, 1.0}) {
        const std::size_t samples =
            streams::EffectiveSamples(spec, options.max_samples);
        std::unique_ptr<streams::Stream> stream =
            spec.make(samples, options.seed);
        core::DmtConfig config;
        config.num_features = m;
        config.num_classes = static_cast<int>(spec.num_classes);
        config.max_candidates = capacity;
        config.replacement_rate = rate;
        config.seed = options.seed;
        core::DynamicModelTree tree(config);
        eval::PrequentialConfig eval_config;
        eval_config.expected_samples = samples;
        const eval::PrequentialResult result =
            eval::RunPrequential(stream.get(), &tree, eval_config);
        std::printf("%-10s %16zu %14.1f %8.3f %8.1f\n", spec.name.c_str(),
                    capacity, rate, result.f1.mean(),
                    result.num_splits.mean());
      }
    }
  }
  return 0;
}
