// Experiment on the gradient-based candidate loss approximation (Eqs. 6-7).
//
// The approximated gain is split *evidence*, not a loss forecast: it is a
// deliberately conservative lower bound on the improvement a candidate
// could achieve (one warm-started gradient step, Broelemann & Kasneci
// 2019). What the Dynamic Model Tree actually needs from it is (a) correct
// RANKING of candidates, so the best split wins, and (b) near-zero cost, so
// hundreds of candidates can be scored without training models. This bench
// measures both against ground truth (really-trained warm-started child
// models) on a stream whose true split is x0 <= 0.5.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "dmt/common/random.h"
#include "dmt/core/candidate.h"
#include "dmt/linear/glm.h"

int main() {
  using namespace dmt;
  constexpr int kBatches = 150;
  constexpr int kBatchSize = 100;
  constexpr double kLambda = 0.2;

  // Candidates: thresholds on both features; index 2 (x0 <= 0.5) is the
  // true concept boundary.
  struct Candidate {
    int feature;
    double value;
    core::CandidateStats stats;
    linear::Glm child;  // ground truth: actually trained on the left side
    double child_loss = 0.0;
  };
  linear::Glm parent({.num_features = 2, .num_classes = 2, .seed = 1});
  std::vector<Candidate> candidates;
  for (int feature : {0, 1}) {
    for (double value : {0.25, 0.5, 0.75}) {
      candidates.push_back(
          {feature, value,
           core::CandidateStats(feature, value, parent.params().size()),
           linear::Glm({.num_features = 2, .num_classes = 2, .seed = 2}),
           0.0});
      candidates.back().child.WarmStartFrom(parent);
    }
  }

  double parent_loss = 0.0;
  std::vector<double> parent_grad(parent.params().size(), 0.0);
  double parent_count = 0.0;
  double approx_seconds = 0.0;
  double exact_seconds = 0.0;

  Rng rng(3);
  std::vector<double> grad_one(parent.params().size());
  for (int b = 0; b < kBatches; ++b) {
    Batch batch(2);
    for (int i = 0; i < kBatchSize; ++i) {
      std::vector<double> x = {rng.Uniform(), rng.Uniform()};
      batch.Add(x, x[0] <= 0.5 ? (x[1] <= 0.7 ? 1 : 0) : 0);
    }
    parent.Fit(batch);

    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double loss =
          parent.LossAndGradientOne(batch.row(i), batch.label(i), grad_one);
      parent_loss += loss;
      for (std::size_t p = 0; p < parent_grad.size(); ++p) {
        parent_grad[p] += grad_one[p];
      }
      for (Candidate& candidate : candidates) {
        if (batch.row(i)[candidate.feature] > candidate.value) continue;
        candidate.stats.loss += loss;
        for (std::size_t p = 0; p < candidate.stats.grad.size(); ++p) {
          candidate.stats.grad[p] += grad_one[p];
        }
        candidate.stats.count += 1.0;
      }
    }
    parent_count += static_cast<double>(batch.size());
    const auto t1 = std::chrono::steady_clock::now();

    // Ground truth: train each candidate's left-child model for real.
    for (Candidate& candidate : candidates) {
      Batch left(2);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch.row(i)[candidate.feature] <= candidate.value) {
          left.Add(batch.row(i), batch.label(i));
        }
      }
      candidate.child_loss += candidate.child.Loss(left);
      candidate.child.Fit(left);
    }
    const auto t2 = std::chrono::steady_clock::now();
    approx_seconds += std::chrono::duration<double>(t1 - t0).count();
    exact_seconds += std::chrono::duration<double>(t2 - t1).count();
  }

  std::printf("Candidate ranking: Eq. 7 evidence vs. really-trained child "
              "models\n");
  std::printf("%-12s %14s %18s\n", "candidate", "approx gain",
              "true left improvement");
  int best_approx = 0;
  int best_true = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& candidate = candidates[i];
    const double approx = core::ApproxCandidateLoss(
        candidate.stats.loss, candidate.stats.grad, candidate.stats.count,
        kLambda);
    const double approx_gain = candidate.stats.loss - approx;
    const double true_gain = candidate.stats.loss - candidate.child_loss;
    std::printf("x%d <= %.2f   %14.1f %18.1f\n", candidate.feature,
                candidate.value, approx_gain, true_gain);
    if (approx_gain >
        candidates[best_approx].stats.loss -
            core::ApproxCandidateLoss(candidates[best_approx].stats.loss,
                                      candidates[best_approx].stats.grad,
                                      candidates[best_approx].stats.count,
                                      kLambda)) {
      best_approx = static_cast<int>(i);
    }
    if (true_gain > candidates[best_true].stats.loss -
                        candidates[best_true].child_loss) {
      best_true = static_cast<int>(i);
    }
  }
  std::printf("\nbest by approximation: x%d <= %.2f; best by ground truth: "
              "x%d <= %.2f  -> %s\n",
              candidates[best_approx].feature, candidates[best_approx].value,
              candidates[best_true].feature, candidates[best_true].value,
              best_approx == best_true ? "AGREE" : "DISAGREE");
  std::printf("cost for %zu candidates: approximation %.4fs, real training "
              "%.4fs (%.1fx)\n",
              candidates.size(), approx_seconds, exact_seconds,
              exact_seconds / approx_seconds);
  return 0;
}
