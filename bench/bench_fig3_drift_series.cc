// Reproduces Figure 3 of the paper: F1 and log(number of splits) over time
// for the four streams with known concept drift (TueEyeQ-, Insects-Abrupt-,
// Insects-Incremental-surrogates and SEA), aggregated with a sliding window
// of 20 batches. Output is CSV (dataset,model,batch,f1_mean,f1_std,
// log_splits) for plotting, followed by a compact textual summary of the
// drift-recovery behaviour.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dmt/common/stats.h"
#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  options.keep_series = true;
  if (options.datasets.empty()) {
    options.datasets = {"TueEyeQ", "Insects-Abr", "Insects-Inc", "SEA"};
  }
  const std::vector<std::string> models =
      options.models.empty() ? bench::StandaloneModels() : options.models;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(models, options);

  std::printf("dataset,model,batch,f1_window_mean,f1_window_std,log_splits\n");
  constexpr std::size_t kWindow = 20;  // the paper's Figure 3 window
  for (const bench::CellResult& cell : cells) {
    if (cell.failed) continue;  // a FAILED cell has no series to plot
    SlidingWindowStats f1_window(kWindow);
    for (std::size_t b = 0; b < cell.f1_series.size(); ++b) {
      f1_window.Add(cell.f1_series[b]);
      // Emit every 5th point to keep the CSV compact.
      if (b % 5 != 0) continue;
      const double log_splits =
          std::log10(std::max(1.0, cell.splits_series[b]));
      std::printf("%s,%s,%zu,%.4f,%.4f,%.4f\n", cell.dataset.c_str(),
                  cell.model.c_str(), b, f1_window.mean(), f1_window.stddev(),
                  log_splits);
    }
  }

  // Summary: minimum windowed F1 (drop depth) and final windowed F1
  // (recovery) per model and dataset.
  std::printf("\nFigure 3 summary (drift robustness):\n");
  std::printf("%-14s %-10s %8s %8s %8s\n", "dataset", "model", "minF1",
              "lastF1", "maxSplit");
  for (const bench::CellResult& cell : cells) {
    if (cell.failed) continue;
    SlidingWindowStats f1_window(kWindow);
    double min_f1 = 1.0;
    double last_f1 = 0.0;
    double max_splits = 0.0;
    for (std::size_t b = 0; b < cell.f1_series.size(); ++b) {
      f1_window.Add(cell.f1_series[b]);
      if (b >= kWindow) min_f1 = std::min(min_f1, f1_window.mean());
      last_f1 = f1_window.mean();
      max_splits = std::max(max_splits, cell.splits_series[b]);
    }
    std::printf("%-14s %-10s %8.3f %8.3f %8.0f\n", cell.dataset.c_str(),
                cell.model.c_str(), min_f1, last_f1, max_splits);
  }

  // Faulted / telemetry sweeps: what was injected into each cell and how
  // often the GLM leaf models had to reset, next to the curves it explains.
  bench::PrintRobustnessCounters(cells);
  return 0;
}
