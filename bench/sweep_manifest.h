// Crash-safe progress manifest for supervised sweeps.
//
// One file per sweep configuration under `<root>/manifests/`, named by
// (samples, seed) plus a short hash of the fault configuration (--inject /
// --failpoints specs), so a faulted sweep can never satisfy a clean
// --resume or vice versa. Each finished cell appends one record
//   <dataset>,<model>,ok|failed,<error>
// and the whole manifest is republished via temp file + atomic rename
// (the sweep_cache idiom): a reader either sees the previous complete
// manifest or the new one, never a torn write, even if the sweep is
// SIGKILLed mid-publish.
//
// --resume loads the manifest and skips every recorded cell: `ok` cells
// load their numbers from the sweep cache (or recompute on a cache miss),
// `failed` cells render FAILED without being re-run.
#ifndef DMT_BENCH_SWEEP_MANIFEST_H_
#define DMT_BENCH_SWEEP_MANIFEST_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

namespace dmt::bench {

struct ManifestKey {
  std::size_t samples = 0;
  std::uint64_t seed = 0;
  // Fault configuration; empty strings for clean sweeps.
  std::string inject_spec;
  std::string failpoint_spec;
};

struct ManifestEntry {
  bool failed = false;
  std::string error;  // empty for ok cells; single-line, commas stripped
};

class SweepManifest {
 public:
  SweepManifest(std::string root, const ManifestKey& key);

  // Loads the existing manifest for this key from disk; returns the number
  // of entries recovered (0 when starting fresh or on a parse failure).
  std::size_t Load();

  // Records one finished cell and republishes the manifest atomically.
  // Thread-safe: workers call this as cells complete, in any order.
  void Record(const std::string& dataset, const std::string& model,
              const ManifestEntry& entry);

  // Lookup by (dataset, model); nullopt when the cell is not recorded.
  // Returns a copy so the result stays valid while workers keep recording.
  std::optional<ManifestEntry> Find(const std::string& dataset,
                                    const std::string& model) const;

  std::size_t size() const;

  // Relative file name, e.g. manifests/sweep_s50000_r42_h1a2b3c4d.csv.
  static std::string FileName(const ManifestKey& key);

  const std::string& path() const { return path_; }

 private:
  void Publish();  // rewrites the file via temp + atomic rename (unlocked)

  std::string root_;
  std::string path_;
  mutable std::mutex mutex_;  // guards entries_ and the temp-name counter
  std::map<std::pair<std::string, std::string>, ManifestEntry> entries_;
  std::uint64_t temp_counter_ = 0;
};

}  // namespace dmt::bench

#endif  // DMT_BENCH_SWEEP_MANIFEST_H_
