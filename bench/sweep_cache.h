// Concurrency-safe per-cell result cache for the prequential sweep.
//
// One file per (dataset, model, samples, seed) cell under
// `<root>/cells/`, so partial sweeps (e.g. runs restricted with
// --datasets/--models) can never poison later full runs: a missing cell is
// simply recomputed and added. Writers are safe under parallel sweeps and
// even across processes: each cell is written to a temp file and published
// with an atomic rename; the in-memory index is mutex-guarded.
//
// (The pre-parallel harness kept one monolithic sweep_s<S>_r<R>.csv keyed
// only by (samples, seed); such files are obsolete and ignored.)
#ifndef DMT_BENCH_SWEEP_CACHE_H_
#define DMT_BENCH_SWEEP_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "harness.h"

namespace dmt::bench {

struct CellKey {
  std::string dataset;
  std::string model;
  std::size_t samples = 0;  // the --samples cap, 0 = full Table I sizes
  std::uint64_t seed = 0;
};

class SweepCache {
 public:
  explicit SweepCache(std::string root);

  // Returns the cached cell, from the index or disk; nullopt on miss.
  // Cached cells never carry series (series runs bypass the cache).
  std::optional<CellResult> Load(const CellKey& key);

  // Publishes `cell` under `key`: temp file + atomic rename, then index.
  void Store(const CellKey& key, const CellResult& cell);

  // Relative file name of a cell, e.g.
  // cells/Agrawal__VFDT_MC__s50000_r42_h1a2b3c4d.csv (a short hash of the
  // raw names keeps sanitized names collision-free).
  static std::string CellFileName(const CellKey& key);

 private:
  std::string CellPath(const CellKey& key) const;

  std::string root_;
  std::mutex mutex_;  // guards index_ and temp-name counter
  std::map<std::string, CellResult> index_;
  std::uint64_t temp_counter_ = 0;
};

}  // namespace dmt::bench

#endif  // DMT_BENCH_SWEEP_CACHE_H_
