// Shared experiment harness for the paper-reproduction benchmark binaries
// (one binary per table / figure, see DESIGN.md Sec. 3).
//
// All binaries accept:
//   --samples N    cap on observations per data set (default 50000; 0 = the
//                  full Table I sizes -- slow on one core)
//   --seed S       RNG seed (default 42)
//   --datasets a,b comma-separated data-set filter (default: all 13)
//   --models a,b   comma-separated model filter (default: per-table set)
//   --no-cache     recompute even if a cached sweep exists
//
// Because Tables II-VI all derive from the same prequential sweep, the
// harness caches sweep results under bench_cache/ keyed by (samples, seed);
// the first table binary computes, the rest reuse.
#ifndef DMT_BENCH_HARNESS_H_
#define DMT_BENCH_HARNESS_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/eval/prequential.h"
#include "dmt/streams/datasets.h"

namespace dmt::bench {

struct Options {
  std::size_t max_samples = 50'000;
  std::uint64_t seed = 42;
  std::vector<std::string> datasets;  // empty = all
  std::vector<std::string> models;    // empty = caller default
  bool use_cache = true;
  bool keep_series = false;
};

Options ParseOptions(int argc, char** argv);

// Stand-alone models of the paper's Tables III-V, in row order.
std::vector<std::string> StandaloneModels();
// Stand-alone + ensemble models of Table II, in row order.
std::vector<std::string> AllModels();

// Builds a classifier by paper row name: "DMT", "FIMT-DD", "VFDT(MC)",
// "VFDT(NBA)", "HT-Ada", "EFDT", "ForestEns", "BaggingEns", "GLM".
std::unique_ptr<Classifier> MakeModel(const std::string& name,
                                      int num_features, int num_classes,
                                      std::uint64_t seed);

struct CellResult {
  std::string dataset;
  std::string model;
  double f1_mean = 0.0;
  double f1_std = 0.0;
  double splits_mean = 0.0;
  double splits_std = 0.0;
  double params_mean = 0.0;
  double params_std = 0.0;
  double time_mean = 0.0;  // seconds per test-then-train iteration
  double time_std = 0.0;
  // Per-batch series, only populated when Options.keep_series.
  std::vector<double> f1_series;
  std::vector<double> splits_series;
};

// Runs one model over one data set prequentially.
CellResult RunCell(const streams::DatasetSpec& spec, const std::string& model,
                   const Options& options);

// Runs (or loads from cache) the full sweep over the given models and the
// data-set filter in `options`. Prints progress to stderr.
std::vector<CellResult> RunSweep(const std::vector<std::string>& models,
                                 const Options& options);

// Finds a cell by (dataset, model); nullptr if absent.
const CellResult* FindCell(const std::vector<CellResult>& cells,
                           const std::string& dataset,
                           const std::string& model);

// Datasets selected by the options (defaults to all 13 of Table I).
std::vector<streams::DatasetSpec> SelectedDatasets(const Options& options);

}  // namespace dmt::bench

#endif  // DMT_BENCH_HARNESS_H_
