// Shared experiment harness for the paper-reproduction benchmark binaries
// (one binary per table / figure, see DESIGN.md Sec. 3).
//
// All binaries accept:
//   --samples N     cap on observations per data set (default 50000; 0 = the
//                   full Table I sizes)
//   --seed S        RNG seed (default 42)
//   --datasets a,b  comma-separated data-set filter (default: all 13)
//   --models a,b    comma-separated model filter (default: per-table set)
//   --jobs N        worker threads for the sweep (default 0 = hardware
//                   concurrency; 1 = run inline on the calling thread)
//   --no-cache      recompute even if cached cells exist
//   --cache-dir D   cache root (default bench_cache/)
//   --member-parallel
//                   share the sweep thread pool with ensemble member
//                   training and batch scoring (ARF / LevBag). Opt-in
//                   because LevBag's worst-member reset moves to batch
//                   granularity in parallel mode, so its numbers can differ
//                   from the sequential defaults; such runs bypass the
//                   sweep cache entirely.
//   --telemetry     attach one obs::TelemetryRegistry per cell and write a
//                   TELEMETRY_<dataset>__<model>.json artifact next to the
//                   BENCH_*.json outputs. Counters are seed-deterministic;
//                   timer sections are wall-clock. Telemetry runs bypass
//                   the sweep cache (cached cells carry no registries).
//   --telemetry-dir D
//                   directory for the telemetry artifacts (default ".")
//   --inject SPEC   wrap every cell's stream in a robust::FaultyStream
//                   injecting data faults ("nan=0.01,flip=0.02,..."; see
//                   faulty_stream.h). The injection RNG is seeded
//                   DeriveSeed(cell_seed, "inject") so fault traces and the
//                   resulting metrics are bit-identical at any --jobs value.
//                   Inject runs bypass the sweep cache.
//   --failpoints SPEC
//                   arm deterministic failpoints ("cell:SEA/GLM=1,...", see
//                   failpoint.h) in the process-global registry before any
//                   worker starts. Failpoint runs bypass the sweep cache.
//   --bad-input P   what RunPrequential does with rows carrying non-finite
//                   features or bad labels: skip (default) / impute / throw
//   --cell-timeout S
//                   soft per-cell deadline in seconds (checked between
//                   batches); a cell exceeding it renders FAILED. 0 = off.
//   --resume        skip cells already recorded in this sweep's manifest:
//                   `ok` cells reload from the sweep cache (recomputed on a
//                   cache miss), `failed` cells render FAILED un-rerun
//   --snapshot-every N
//                   checkpoint every cell's model every N batches into
//                   --snapshot-dir (atomic rename; see serial/model_io.h).
//                   Snapshot runs bypass the sweep cache.
//   --snapshot-dir D
//                   snapshot directory (default bench_snapshots/)
//   --dmt-exact     run DMT cells in exact mode (gain_test_every=1,
//                   gain_test_threshold=0, order_buckets=0,
//                   candidate_grad_f32=false): the dirty-node scheduler
//                   evaluates every node every batch through the exact
//                   sort-based scan with full-precision gradients,
//                   bit-identical to the pre-scheduler pipeline.
//                   Non-default scheduler runs bypass the sweep cache
//                   (cache keys do not encode the knobs).
//   --dmt-gain-every N
//                   override DmtConfig::gain_test_every (N >= 1)
//   --dmt-gain-threshold X
//                   override DmtConfig::gain_test_threshold (X >= 0, nats)
//   --dmt-buckets N override DmtConfig::order_buckets: radix-bucket order
//                   statistics with N buckets on evaluation batches
//                   (0 = the exact sort-based scan). Like the scheduler
//                   knobs, non-default values bypass the sweep cache.
//   --dmt-f32-grad 0|1
//                   override DmtConfig::candidate_grad_f32 (float32
//                   candidate-gradient storage). Bypasses the sweep cache
//                   when it deviates from the built-in default.
//
// Supervision: RunSweep wraps every cell in try/catch. A throwing cell is
// retried once with the identical derived seed (deterministic faults fail
// identically; transient ones -- OOM, disk -- get a second chance), then
// recorded as FAILED in the table instead of aborting the sweep. Progress
// is checkpointed after every cell into a crash-safe manifest
// (sweep_manifest.h, atomic rename) enabling --resume after a crash or
// SIGKILL.
//
// Parallelism and determinism: RunSweep dispatches every (dataset, model)
// cell as an independent task on a work-stealing thread pool. Each cell's
// RNG seed is derived by hashing (base seed, dataset name, model name) --
// never from thread identity or scheduling order -- so the numbers are
// bit-identical at any --jobs value, including --jobs 1.
//
// Because Tables II-VI all derive from the same prequential sweep, the
// harness caches each finished cell under bench_cache/cells/, one file per
// (dataset, model, samples, seed) written via atomic rename (safe under
// concurrent sweeps); the first table binary computes, the rest reuse, and
// a filtered run can never poison a later full run. See sweep_cache.h.
#ifndef DMT_BENCH_HARNESS_H_
#define DMT_BENCH_HARNESS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dmt/common/classifier.h"
#include "dmt/common/thread_pool.h"
#include "dmt/eval/prequential.h"
#include "dmt/robust/faulty_stream.h"
#include "dmt/streams/datasets.h"

namespace dmt::bench {

struct Options {
  std::size_t max_samples = 50'000;
  std::uint64_t seed = 42;
  std::vector<std::string> datasets;  // empty = all
  std::vector<std::string> models;    // empty = caller default
  // Sweep worker threads: 0 = hardware concurrency, 1 = inline.
  std::size_t jobs = 0;
  bool use_cache = true;
  bool keep_series = false;
  // Share the sweep pool with ensemble members (see the flag doc above).
  bool member_parallel = false;
  std::string cache_dir = "bench_cache";
  // Record per-cell telemetry registries and write JSON artifacts.
  bool telemetry = false;
  std::string telemetry_dir = ".";
  // Fault injection / supervision (see the flag docs above). Runs with a
  // non-empty inject or failpoint spec bypass the sweep cache: their
  // numbers are deliberately corrupted and must never poison clean runs.
  std::string inject_spec;
  std::string failpoint_spec;
  BadInputPolicy bad_input_policy = BadInputPolicy::kSkip;
  double cell_timeout_seconds = 0.0;  // soft per-cell deadline; 0 = off
  bool resume = false;
  // Mid-cell model checkpointing: every N completed batches each in-flight
  // cell saves its learner to
  // <snapshot_dir>/SNAPSHOT_<dataset>__<model>.bin via the atomic-rename
  // publish of serial::SaveClassifierToFile. 0 disables. Snapshot runs
  // bypass the sweep cache (a cache hit skips the cell and would write no
  // snapshot).
  std::size_t snapshot_every = 0;
  std::string snapshot_dir = "bench_snapshots";
  // DMT dirty-node gain scheduler overrides (see the flag docs above).
  // Sentinels mean "keep the DmtConfig defaults"; any non-default value
  // bypasses the sweep cache.
  bool dmt_exact = false;
  std::size_t dmt_gain_every = 0;      // 0 = default
  double dmt_gain_threshold = -1.0;    // < 0 = default
  // Hot-path overrides; SIZE_MAX / -1 = keep the DmtConfig defaults.
  std::size_t dmt_buckets = static_cast<std::size_t>(-1);
  int dmt_f32_grad = -1;  // -1 = default, else 0 / 1

  // True when any scheduler or hot-path knob deviates from the built-in
  // defaults.
  bool DmtSchedulerOverridden() const {
    return dmt_exact || dmt_gain_every != 0 || dmt_gain_threshold >= 0.0 ||
           dmt_buckets != static_cast<std::size_t>(-1) || dmt_f32_grad >= 0;
  }
};

// Parses argv. `--help` prints the usage text to stdout and exits 0; an
// unknown flag, a missing value, or a malformed spec prints the usage text
// to stderr and exits 2 (the conventional usage-error code, distinct from
// runtime failures exiting 1).
Options ParseOptions(int argc, char** argv);

// Stand-alone models of the paper's Tables III-V, in row order.
std::vector<std::string> StandaloneModels();
// Stand-alone + ensemble models of Table II, in row order.
std::vector<std::string> AllModels();

// Builds a classifier by paper row name: "DMT", "FIMT-DD", "VFDT(MC)",
// "VFDT(NBA)", "HT-Ada", "EFDT", "ForestEns", "BaggingEns", "OzaBag",
// "OzaBoost", "SGT", "GLM". A non-null `pool` is lent to the ensembles
// (ForestEns / BaggingEns) for member training and batch scoring; it must
// outlive the returned model.
std::unique_ptr<Classifier> MakeModel(const std::string& name,
                                      int num_features, int num_classes,
                                      std::uint64_t seed,
                                      ThreadPool* pool = nullptr,
                                      const Options* options = nullptr);

struct CellResult {
  std::string dataset;
  std::string model;
  double f1_mean = 0.0;
  double f1_std = 0.0;
  double splits_mean = 0.0;
  double splits_std = 0.0;
  double params_mean = 0.0;
  double params_std = 0.0;
  double time_mean = 0.0;  // seconds per test-then-train iteration
  double time_std = 0.0;
  // Per-batch series, only populated when Options.keep_series.
  std::vector<double> f1_series;
  std::vector<double> splits_series;
  // Full telemetry JSON (counters, gauges, timers), only populated when
  // Options.telemetry.
  std::string telemetry_json;
  // Counters-only JSON (the seed-deterministic golden surface; no
  // wall-clock fields), only populated when Options.telemetry.
  std::string telemetry_counters_json;
  // Faults injected into this cell's stream (all zero unless --inject).
  robust::FaultCounts fault_counts;
  // Sanitization tallies from the prequential run.
  std::uint64_t rows_dropped = 0;
  std::uint64_t values_imputed = 0;
  // Supervision outcome: a failed cell carries no valid metrics and is
  // rendered as FAILED by the table binaries (excluded from summary rows).
  bool failed = false;
  std::string error;
};

// Runs one model over one data set prequentially. The cell's RNG seed is
// DeriveSeed(options.seed, dataset, model), independent of every other cell.
// `pool` (optional) is lent to ensemble models, see MakeModel.
CellResult RunCell(const streams::DatasetSpec& spec, const std::string& model,
                   const Options& options, ThreadPool* pool = nullptr);

// Runs (or loads from cache) the full sweep over the given models and the
// data-set filter in `options`, fanning the cells out over `options.jobs`
// worker threads; results are bit-identical at any thread count. Prints
// mutex-serialized progress to stderr.
std::vector<CellResult> RunSweep(const std::vector<std::string>& models,
                                 const Options& options);

// Finds a cell by (dataset, model); nullptr if absent.
const CellResult* FindCell(const std::vector<CellResult>& cells,
                           const std::string& dataset,
                           const std::string& model);

// Datasets selected by the options (defaults to all 13 of Table I).
std::vector<streams::DatasetSpec> SelectedDatasets(const Options& options);

// Extracts one counter from a TelemetryRegistry::CountersJson document; 0
// if the counter is absent (or the cell ran without --telemetry).
std::uint64_t CounterFromJson(const std::string& counters_json,
                              const std::string& name);

// File-name-safe artifact stem for a (dataset, model) cell:
// non-alphanumerics (except '-') become '_', e.g. "SEA__VFDT_MC_" for
// ("SEA", "VFDT(MC)"). The sanitization is lossy -- "VFDT(MC)" and the
// literal name "VFDT_MC_" collapse to the same stem -- so `used` tracks
// every stem handed out so far (stem -> raw "dataset/model" key): on a
// collision with a *different* raw pair, a short FNV-1a hash of the raw
// names is appended, guaranteeing distinct cells never share an artifact
// path. Deterministic: depends only on the raw names and call order (the
// sweep's cell order is fixed), never on threads or timing.
std::string ArtifactStem(const std::string& dataset, const std::string& model,
                         std::map<std::string, std::string>* used);

// Per-cell robustness counters (the inject.* fault tallies and glm.resets)
// as a CSV block on stdout, one row per cell that has any. The figure
// binaries append this after their plot data so faulted / telemetry sweeps
// surface what was injected and how the GLMs coped, next to the curves it
// explains. Prints nothing for clean, telemetry-free sweeps.
void PrintRobustnessCounters(const std::vector<CellResult>& cells);

}  // namespace dmt::bench

#endif  // DMT_BENCH_HARNESS_H_
