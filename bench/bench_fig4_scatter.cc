// Reproduces Figure 4 of the paper: per-data-set average F1 vs. log10 of
// the average number of splits for every incremental decision tree. Points
// in the top-left quadrant (high F1, few splits) are best; the DMT cloud
// should sit left of the Hoeffding trees at comparable F1.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace dmt;
  bench::Options options = bench::ParseOptions(argc, argv);
  const std::vector<std::string> models =
      options.models.empty() ? bench::StandaloneModels() : options.models;
  const std::vector<bench::CellResult> cells =
      bench::RunSweep(models, options);

  std::printf("model,dataset,f1,log10_splits\n");
  for (const bench::CellResult& cell : cells) {
    if (cell.failed) continue;  // a FAILED cell has no point to plot
    std::printf("%s,%s,%.4f,%.4f\n", cell.model.c_str(),
                cell.dataset.c_str(), cell.f1_mean,
                std::log10(std::max(1.0, cell.splits_mean)));
  }

  std::printf("\nFigure 4 centroids (mean over data sets):\n");
  std::printf("%-10s %8s %14s\n", "model", "F1", "log10(splits)");
  for (const std::string& model : models) {
    double f1 = 0.0;
    double ls = 0.0;
    int n = 0;
    for (const bench::CellResult& cell : cells) {
      if (cell.model != model || cell.failed) continue;
      f1 += cell.f1_mean;
      ls += std::log10(std::max(1.0, cell.splits_mean));
      ++n;
    }
    if (n == 0) continue;
    std::printf("%-10s %8.3f %14.3f\n", model.c_str(), f1 / n, ls / n);
  }

  // Faulted / telemetry sweeps: per-cell inject.* tallies and glm.resets.
  bench::PrintRobustnessCounters(cells);
  return 0;
}
