// Interpretability report: quantifies the paper's complexity claims on one
// stream (Figure 4 in miniature) and prints the DMT's full, human-readable
// state -- the tree predicate structure, per-leaf model weights, and the
// number-of-splits / number-of-parameters accounting of Sec. VI-D2 for
// every model.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "dmt/dmt.h"

int main() {
  using namespace dmt;

  // The TueEyeQ surrogate: 76 features, 82% majority, three abrupt drifts
  // (the IQ-test task blocks of the original data set).
  const streams::DatasetSpec spec = streams::DatasetByName("TueEyeQ");
  const std::size_t samples = spec.full_samples;

  struct Row {
    std::string name;
    double f1;
    double splits;
    double params;
  };
  std::vector<Row> rows;
  std::unique_ptr<core::DynamicModelTree> dmt;

  for (const char* name :
       {"DMT", "FIMT-DD", "VFDT(MC)", "VFDT(NBA)", "HT-Ada", "EFDT"}) {
    std::unique_ptr<streams::Stream> stream = spec.make(samples, 42);
    std::unique_ptr<Classifier> model;
    if (std::string(name) == "DMT") {
      auto tree = std::make_unique<core::DynamicModelTree>(core::DmtConfig{
          .num_features = static_cast<int>(spec.num_features),
          .num_classes = static_cast<int>(spec.num_classes)});
      dmt = std::move(tree);
      // Evaluate the shared instance (kept for the report below).
      eval::PrequentialConfig config;
      config.expected_samples = samples;
      const eval::PrequentialResult result =
          eval::RunPrequential(stream.get(), dmt.get(), config);
      rows.push_back({name, result.f1.mean(), result.num_splits.mean(),
                      result.num_params.mean()});
      continue;
    }
    if (std::string(name) == "FIMT-DD") {
      model = std::make_unique<trees::FimtDd>(trees::FimtDdConfig{
          .num_features = static_cast<int>(spec.num_features),
          .num_classes = static_cast<int>(spec.num_classes)});
    } else if (std::string(name) == "VFDT(MC)" ||
               std::string(name) == "VFDT(NBA)") {
      model = std::make_unique<trees::Vfdt>(trees::VfdtConfig{
          .num_features = static_cast<int>(spec.num_features),
          .num_classes = static_cast<int>(spec.num_classes),
          .leaf_prediction = std::string(name) == "VFDT(MC)"
                                 ? trees::LeafPrediction::kMajorityClass
                                 : trees::LeafPrediction::kNaiveBayesAdaptive});
    } else if (std::string(name) == "HT-Ada") {
      model = std::make_unique<trees::HoeffdingAdaptiveTree>(trees::HatConfig{
          .num_features = static_cast<int>(spec.num_features),
          .num_classes = static_cast<int>(spec.num_classes)});
    } else {
      model = std::make_unique<trees::Efdt>(trees::EfdtConfig{
          .num_features = static_cast<int>(spec.num_features),
          .num_classes = static_cast<int>(spec.num_classes)});
    }
    eval::PrequentialConfig config;
    config.expected_samples = samples;
    const eval::PrequentialResult result =
        eval::RunPrequential(stream.get(), model.get(), config);
    rows.push_back({name, result.f1.mean(), result.num_splits.mean(),
                    result.num_params.mean()});
  }

  std::printf("Interpretability/complexity report on %s (%zu observations, "
              "3 abrupt drifts)\n\n",
              spec.name.c_str(), samples);
  std::printf("%-10s %8s %10s %12s %14s\n", "model", "F1", "splits",
              "parameters", "log10(splits)");
  for (const Row& row : rows) {
    std::printf("%-10s %8.3f %10.1f %12.0f %14.2f\n", row.name.c_str(),
                row.f1, row.splits, row.params,
                std::log10(std::max(1.0, row.splits)));
  }

  std::printf("\n--- The Dynamic Model Tree itself ---\n");
  std::printf("structure: %zu inner nodes, %zu leaves, depth %zu\n",
              dmt->NumInnerNodes(), dmt->NumLeaves(), dmt->Depth());
  std::printf("lifetime: %zu splits, %zu subtree replacements, %zu prunes "
              "across %zu time steps\n\n",
              dmt->num_splits_performed(), dmt->num_subtree_replacements(),
              dmt->num_prunes(), dmt->time_step());
  std::printf("%s\n", dmt->Describe(5).c_str());
  return 0;
}
