// Quickstart: train a Dynamic Model Tree on the SEA stream with abrupt
// concept drift, prequentially evaluate it, and inspect the learned tree.
//
// This also reenacts the paper's Figure 1 contrast: on the same stream a
// Hoeffding Tree (VFDT) needs far more splits than the Model Tree for
// comparable accuracy, because SEA's concept is linear per segment.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "dmt/dmt.h"

int main() {
  using namespace dmt;

  // 1. A 50k-observation SEA stream with abrupt drifts at 20/40/60/80%.
  streams::SeaConfig sea;
  sea.total_samples = 50'000;
  for (double f : {0.2, 0.4, 0.6, 0.8}) {
    sea.drift_points.push_back(static_cast<std::size_t>(f * 50'000));
  }
  sea.noise = 0.1;

  // 2. The Dynamic Model Tree with the paper's default configuration.
  core::DmtConfig config;
  config.num_features = 3;
  config.num_classes = 2;
  core::DynamicModelTree dmt(config);

  // 3. Prequential (test-then-train) evaluation, batches of 0.1%.
  streams::SeaGenerator stream(sea);
  eval::PrequentialConfig eval_config;
  eval_config.expected_samples = sea.total_samples;
  const eval::PrequentialResult result =
      eval::RunPrequential(&stream, &dmt, eval_config);

  std::printf("Dynamic Model Tree on SEA (4 abrupt drifts, 10%% noise):\n");
  std::printf("  prequential F1 : %.3f +- %.3f\n", result.f1.mean(),
              result.f1.stddev());
  std::printf("  splits (mean)  : %.1f\n", result.num_splits.mean());
  std::printf("  structure      : %zu inner nodes, %zu leaves, depth %zu\n",
              dmt.NumInnerNodes(), dmt.NumLeaves(), dmt.Depth());
  std::printf("  adaptations    : %zu splits, %zu subtree replacements, %zu "
              "prunes\n\n",
              dmt.num_splits_performed(), dmt.num_subtree_replacements(),
              dmt.num_prunes());

  std::printf("Learned tree (split predicates + strongest leaf weights):\n%s\n",
              dmt.Describe().c_str());

  // 4. The Figure 1 contrast: a VFDT on the identical stream.
  streams::SeaGenerator stream2(sea);
  trees::Vfdt vfdt({.num_features = 3, .num_classes = 2});
  const eval::PrequentialResult vfdt_result =
      eval::RunPrequential(&stream2, &vfdt, eval_config);
  std::printf("Hoeffding Tree (VFDT) on the same stream:\n");
  std::printf("  prequential F1 : %.3f +- %.3f\n", vfdt_result.f1.mean(),
              vfdt_result.f1.stddev());
  std::printf("  splits (mean)  : %.1f  <-- vs. %.1f for the DMT\n",
              vfdt_result.num_splits.mean(), result.num_splits.mean());
  return 0;
}
