// Regression quickstart: the Dynamic Model Tree framework instantiated with
// linear-regression simple models (paper Sec. V: the framework is generic
// in the model/loss choice), against the original FIMT-DD on the Friedman
// benchmark with abrupt drift.
#include <cstdio>

#include "dmt/core/dmt_regressor.h"
#include "dmt/eval/regression_prequential.h"
#include "dmt/streams/regression_streams.h"
#include "dmt/trees/fimtdd_regressor.h"

int main() {
  using namespace dmt;
  constexpr std::size_t kSamples = 60'000;

  auto run = [&](auto* model, const char* name) {
    streams::FriedConfig stream_config;
    stream_config.total_samples = kSamples;
    stream_config.drift_points = {kSamples / 2};
    streams::FriedGenerator stream(stream_config);
    eval::RegressionPrequentialConfig config;
    config.expected_samples = kSamples;
    const eval::RegressionPrequentialResult result =
        eval::RunRegressionPrequential(&stream,
                                       eval::MakeRegressorApi(model), config);
    std::printf("%-10s MAE %.3f  RMSE %.3f  R^2 %.3f  splits %.1f\n", name,
                result.mae.mean(), result.rmse.mean(), result.r_squared,
                result.num_splits.mean());
  };

  std::printf("Friedman #1 stream, %zu observations, abrupt drift at 50%%:\n",
              kSamples);
  core::DmtRegressor dmt({.num_features = 10, .learning_rate = 0.05});
  run(&dmt, "DMT-R");
  std::printf("  structure: %zu inner nodes, depth %zu; adaptations: %zu "
              "splits / %zu replacements / %zu prunes\n",
              dmt.NumInnerNodes(), dmt.Depth(), dmt.num_splits_performed(),
              dmt.num_subtree_replacements(), dmt.num_prunes());

  trees::FimtDdRegressor fimtdd({.num_features = 10});
  run(&fimtdd, "FIMT-DD");
  std::printf("  structure: %zu inner nodes; Page-Hinkley prunes: %zu\n",
              fimtdd.NumInnerNodes(), fimtdd.NumPrunes());
  return 0;
}
