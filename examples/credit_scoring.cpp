// Credit-scoring scenario (the paper's motivating high-stakes application,
// Sec. I): an imbalanced binary stream modeled after the Bank Marketing
// data set, where interpretability of every model update matters (GDPR-style
// accountability).
//
// The example shows the full interpretable-online-learning workflow:
//   1. train a Dynamic Model Tree prequentially on an imbalanced stream,
//   2. extract a local feature-based explanation for one decision,
//   3. answer "why did the model change at time step u?" from the
//      structural audit log -- each change is tied to a loss gain and the
//      AIC threshold it had to clear (paper Sec. I-A and V-C).
#include <cstdio>

#include "dmt/dmt.h"

int main() {
  using namespace dmt;

  // An imbalanced "bank marketing" surrogate: 16 features, 88% majority
  // class, mostly linear concept with some interactions.
  streams::ConceptStreamConfig config;
  config.name = "CreditScoring";
  config.num_features = 16;
  config.num_classes = 2;
  // Interaction-heavy approval rules (axis-aligned regions), so the tree
  // actually needs splits and the audit log below has entries.
  config.teacher = streams::TeacherKind::kTree;
  config.tree_depth = 3;
  config.leaf_purity = 0.95;
  config.class_priors = {0.88, 0.12};
  config.noise = 0.02;
  // A policy change mid-stream: the approval concept drifts abruptly.
  config.drift_events = {{0.6, 0.6}};
  config.total_samples = 40'000;
  streams::ConceptStream stream(config);

  core::DmtConfig dmt_config;
  dmt_config.num_features = 16;
  dmt_config.num_classes = 2;
  core::DynamicModelTree dmt(dmt_config);

  eval::PrequentialConfig eval_config;
  eval_config.expected_samples = config.total_samples;
  const eval::PrequentialResult result =
      eval::RunPrequential(&stream, &dmt, eval_config);

  std::printf("Credit-scoring stream (88%% / 12%% classes, abrupt policy "
              "drift at 60%%):\n");
  std::printf("  prequential F1 : %.3f +- %.3f\n", result.f1.mean(),
              result.f1.stddev());
  std::printf("  accuracy       : %.3f\n", result.accuracy.mean());
  std::printf("  final tree     : %zu inner nodes, %zu leaves\n\n",
              dmt.NumInnerNodes(), dmt.NumLeaves());

  // 2. A local explanation: which features push THIS applicant's score?
  std::vector<double> applicant(16, 0.5);
  applicant[0] = 0.9;   // e.g. high account balance
  applicant[3] = 0.1;   // e.g. short employment history
  const std::vector<double> proba = dmt.PredictProba(applicant);
  const std::vector<double> weights = dmt.LeafFeatureWeights(applicant, 1);
  std::printf("Applicant decision: P(subscribe) = %.3f\n", proba[1]);
  std::printf("Local feature weights of the responsible leaf model "
              "(class 1):\n");
  for (int j = 0; j < 16; ++j) {
    if (j % 4 == 0) std::printf("  ");
    std::printf("w[%2d]=%+.2f  ", j, weights[j]);
    if (j % 4 == 3) std::printf("\n");
  }

  // 3. The audit log: why did the model change, and when?
  std::printf("\nStructural audit log (one line per model update):\n");
  for (const core::StructuralEvent& event : dmt.events()) {
    const char* kind = "split";
    if (event.kind == core::StructuralEvent::Kind::kReplaceSplit) {
      kind = "replace-split";
    } else if (event.kind == core::StructuralEvent::Kind::kPruneToLeaf) {
      kind = "prune-to-leaf";
    }
    std::printf("  t=%4zu  %-14s depth=%zu  feature=%d  loss gain %.1f "
                ">= threshold %.1f\n",
                event.time_step, kind, event.depth, event.feature, event.gain,
                event.threshold);
  }
  if (dmt.events().empty()) {
    std::printf("  (no structural changes: the root model was sufficient)\n");
  }
  std::printf("\nEvery change above is justified by a measured reduction of "
              "the negative log-likelihood\n");
  std::printf("exceeding its AIC confidence threshold (paper Eq. 11) -- the "
              "answer to \"why did you\nsplit this node at time step u?\"\n");
  return 0;
}
