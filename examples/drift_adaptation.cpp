// Drift adaptation head-to-head (the paper's Figure 3 story): an abrupt
// concept drift hits an insect-monitoring-style stream, and we trace how the
// Dynamic Model Tree, FIMT-DD, VFDT and the Hoeffding Adaptive Tree degrade
// and recover, batch by batch.
//
// The DMT adapts via its loss-based gains alone (no drift detector); VFDT
// never adapts; FIMT-DD needs its Page-Hinkley alarms; HT-Ada needs ADWIN
// plus alternate trees.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "dmt/dmt.h"

int main() {
  using namespace dmt;
  constexpr std::size_t kSamples = 60'000;
  constexpr std::size_t kBatch = 60;

  auto make_stream = [&]() {
    streams::ConceptStreamConfig config;
    config.name = "InsectsAbrupt";
    config.num_features = 33;
    config.num_classes = 6;
    config.teacher = streams::TeacherKind::kHybrid;
    config.tree_depth = 4;
    config.class_priors = streams::ImbalancedPriors(6, 0.29);
    config.noise = 0.05;
    config.drift_events = {{0.5, 0.5}};  // one abrupt drift mid-stream
    config.total_samples = kSamples;
    return std::make_unique<streams::ConceptStream>(config);
  };

  struct Entry {
    std::string name;
    std::unique_ptr<Classifier> model;
    std::unique_ptr<streams::Stream> stream;
    std::unique_ptr<streams::OnlineMinMaxScaler> scaler;
    SlidingWindowStats window{20};
    double before = 0.0;  // windowed F1 right before the drift
    double dip = 1.0;     // worst windowed F1 after the drift
    std::size_t recovery_batches = 0;
  };
  std::vector<Entry> entries;
  for (const char* name : {"DMT", "FIMT-DD", "VFDT(MC)", "HT-Ada"}) {
    Entry entry;
    entry.name = name;
    if (entry.name == "DMT") {
      entry.model = std::make_unique<core::DynamicModelTree>(
          core::DmtConfig{.num_features = 33, .num_classes = 6});
    } else if (entry.name == "FIMT-DD") {
      entry.model = std::make_unique<trees::FimtDd>(
          trees::FimtDdConfig{.num_features = 33, .num_classes = 6});
    } else if (entry.name == "VFDT(MC)") {
      entry.model = std::make_unique<trees::Vfdt>(
          trees::VfdtConfig{.num_features = 33, .num_classes = 6});
    } else {
      entry.model = std::make_unique<trees::HoeffdingAdaptiveTree>(
          trees::HatConfig{.num_features = 33, .num_classes = 6});
    }
    entry.stream = make_stream();
    entry.scaler = std::make_unique<streams::OnlineMinMaxScaler>(33);
    entries.push_back(std::move(entry));
  }

  const std::size_t drift_batch = kSamples / kBatch / 2;
  std::printf("batch,");
  for (const Entry& entry : entries) std::printf("%s,", entry.name.c_str());
  std::printf("\n");

  Batch batch(33);
  for (std::size_t b = 0; b * kBatch < kSamples; ++b) {
    bool row_printed = false;
    for (Entry& entry : entries) {
      batch.clear();
      if (entry.stream->FillBatch(kBatch, &batch) == 0) continue;
      entry.scaler->FitTransform(&batch);
      eval::ConfusionMatrix confusion(6);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        confusion.Add(entry.model->Predict(batch.row(i)), batch.label(i));
      }
      entry.model->PartialFit(batch);
      entry.window.Add(confusion.WeightedF1());

      if (b == drift_batch - 1) entry.before = entry.window.mean();
      if (b >= drift_batch) {
        entry.dip = std::min(entry.dip, entry.window.mean());
        if (entry.recovery_batches == 0 &&
            entry.window.mean() >= 0.95 * entry.before) {
          entry.recovery_batches = b - drift_batch;
        }
      }
      if (b % 50 == 0) {
        if (!row_printed) {
          std::printf("%zu,", b);
          row_printed = true;
        }
        std::printf("%.3f,", entry.window.mean());
      }
    }
    if (row_printed) std::printf("\n");
  }

  std::printf("\nAbrupt drift at batch %zu -- degradation and recovery:\n",
              drift_batch);
  std::printf("%-10s %12s %10s %22s\n", "model", "F1 before", "F1 dip",
              "batches to 95% recover");
  for (const Entry& entry : entries) {
    std::printf("%-10s %12.3f %10.3f %22s\n", entry.name.c_str(),
                entry.before, entry.dip,
                entry.recovery_batches > 0
                    ? std::to_string(entry.recovery_batches).c_str()
                    : "never");
  }
  return 0;
}
